"""Cross-spectral estimation between two signals.

Equation 12 of the paper shows that when two *correlated* noise signals
converge at an adder, the output PSD contains the cross-spectra
``S_xy + S_yx`` in addition to the two auto-spectra.  The analytical
engine handles this by tracking per-source complex transfer functions
(:class:`repro.psd.propagation.TrackedSpectrum`); the estimators in this
module measure cross-spectra from sample data, which the tests use to
validate that handling.
"""

from __future__ import annotations

import numpy as np

from repro.lti.windows import get_window


def cross_power_spectrum(x: np.ndarray, y: np.ndarray, n_bins: int,
                         window: str = "hann",
                         overlap: float = 0.5) -> np.ndarray:
    """Welch estimate of the cross power spectrum ``S_xy``.

    Parameters
    ----------
    x, y:
        Sample records of equal length.
    n_bins:
        Segment length / number of frequency bins.
    window, overlap:
        Welch parameters.

    Returns
    -------
    numpy.ndarray
        Complex array of length ``n_bins`` normalized so that its sum
        approximates ``E[(x - E[x]) (y - E[y])]`` (the covariance).
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if len(x) != len(y):
        raise ValueError(f"records must have equal length, got {len(x)} and {len(y)}")
    if len(x) == 0:
        raise ValueError("cannot estimate the cross spectrum of empty records")
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")

    x_centered = x - np.mean(x)
    y_centered = y - np.mean(y)
    if len(x_centered) < n_bins:
        pad = n_bins - len(x_centered)
        x_centered = np.concatenate([x_centered, np.zeros(pad)])
        y_centered = np.concatenate([y_centered, np.zeros(pad)])

    win = get_window(window, n_bins)
    window_power = float(np.mean(win ** 2))
    hop = max(1, int(round(n_bins * (1.0 - overlap))))

    accumulated = np.zeros(n_bins, dtype=complex)
    count = 0
    start = 0
    while start + n_bins <= len(x_centered):
        spectrum_x = np.fft.fft(x_centered[start:start + n_bins] * win)
        spectrum_y = np.fft.fft(y_centered[start:start + n_bins] * win)
        accumulated += spectrum_x * np.conj(spectrum_y) / (
            n_bins * n_bins * window_power)
        count += 1
        start += hop
    if count == 0:
        spectrum_x = np.fft.fft(x_centered[:n_bins] * win)
        spectrum_y = np.fft.fft(y_centered[:n_bins] * win)
        accumulated = spectrum_x * np.conj(spectrum_y) / (
            n_bins * n_bins * window_power)
        count = 1
    return accumulated / count


def coherence(x: np.ndarray, y: np.ndarray, n_bins: int,
              window: str = "hann", overlap: float = 0.5) -> np.ndarray:
    """Magnitude-squared coherence between two signals.

    Values close to 1 indicate strong linear correlation at that
    frequency; values close to 0 indicate uncorrelated content.  Used in
    tests and ablations to demonstrate when the uncorrelated-addition
    assumption (Eq. 14) is or is not justified.
    """
    from repro.psd.estimation import welch as welch_psd

    sxy = cross_power_spectrum(x, y, n_bins, window=window, overlap=overlap)
    sxx = welch_psd(x, n_bins, window=window, overlap=overlap).ac
    syy = welch_psd(y, n_bins, window=window, overlap=overlap).ac
    denominator = sxx * syy
    result = np.zeros(n_bins)
    valid = denominator > 0
    result[valid] = (np.abs(sxy[valid]) ** 2) / denominator[valid]
    return np.clip(result, 0.0, 1.0)
