"""Discrete power spectral density of a noise signal.

Convention
----------
A :class:`DiscretePsd` over ``n`` bins describes a wide-sense-stationary
noise signal by

* ``ac`` — an array of ``n`` non-negative numbers, the power of the
  zero-mean (random) part of the signal in each frequency bin.  Bin ``k``
  corresponds to normalized frequency ``k / n`` on the full circle
  ``[0, 1)``, so the array covers both positive and negative frequencies
  and ``sum(ac) == variance``.
* ``mean`` — the signed deterministic mean of the signal.

The paper stores ``mu^2`` in the DC bin of its PSD (Eq. 10); here the mean
is kept *signed* and separate so that means can cancel at adders and
change sign through filters with negative DC gain — the squared value is
only formed when the total power is requested.  The
:attr:`DiscretePsd.values` property reconstructs the paper's convention
(DC bin = ``mu^2 + ac[0]``) for display and comparison purposes.

The total power is ``E[x^2] = mean**2 + sum(ac)``.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.noise_model import NoiseStats


class DiscretePsd:
    """Discrete PSD (plus signed mean) of a noise signal.

    Parameters
    ----------
    ac:
        Per-bin power of the zero-mean part of the signal (length
        ``n_bins``, non-negative).
    mean:
        Signed mean of the signal.
    """

    __slots__ = ("ac", "mean")

    def __init__(self, ac: np.ndarray, mean: float = 0.0):
        ac = np.asarray(ac, dtype=float)
        if ac.ndim != 1 or len(ac) < 1:
            raise ValueError("ac must be a non-empty 1-D array")
        if np.any(ac < -1e-15):
            raise ValueError("PSD bins must be non-negative")
        self.ac = np.clip(ac, 0.0, None)
        self.mean = float(mean)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, n_bins: int) -> "DiscretePsd":
        """The PSD of an identically-zero signal."""
        _check_bins(n_bins)
        return cls(np.zeros(n_bins), 0.0)

    @classmethod
    def white(cls, stats: NoiseStats, n_bins: int) -> "DiscretePsd":
        """The PSD of a white noise with the given moments (Eq. 10).

        The variance is spread uniformly over all bins; the mean is kept
        signed and separate.
        """
        _check_bins(n_bins)
        ac = np.full(n_bins, stats.variance / n_bins)
        return cls(ac, stats.mean)

    @classmethod
    def from_moments(cls, mean: float, variance: float, n_bins: int) -> "DiscretePsd":
        """White PSD from raw moments."""
        return cls.white(NoiseStats(mean=mean, variance=variance), n_bins)

    # ------------------------------------------------------------------
    # Scalar summaries
    # ------------------------------------------------------------------
    @property
    def n_bins(self) -> int:
        """Number of frequency bins."""
        return len(self.ac)

    @property
    def variance(self) -> float:
        """Variance (power of the zero-mean part)."""
        return float(np.sum(self.ac))

    @property
    def total_power(self) -> float:
        """Total power ``E[x^2] = mean^2 + variance``."""
        return self.mean ** 2 + self.variance

    @property
    def values(self) -> np.ndarray:
        """PSD bins in the paper's convention (DC bin includes ``mean^2``)."""
        values = self.ac.copy()
        values[0] += self.mean ** 2
        return values

    def to_stats(self) -> NoiseStats:
        """Collapse the PSD to its first two moments."""
        return NoiseStats(mean=self.mean, variance=self.variance)

    @property
    def frequencies(self) -> np.ndarray:
        """Normalized bin frequencies on ``[0, 1)`` (1.0 = sampling rate)."""
        return np.arange(self.n_bins) / self.n_bins

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def copy(self) -> "DiscretePsd":
        """An independent copy."""
        return DiscretePsd(self.ac.copy(), self.mean)

    def __add__(self, other: "DiscretePsd") -> "DiscretePsd":
        """Sum of two *uncorrelated* noise signals (Eq. 14).

        Variances (per bin) add; means add (they are deterministic, so
        their combination is always exact).
        """
        if not isinstance(other, DiscretePsd):
            return NotImplemented
        if other.n_bins != self.n_bins:
            raise ValueError(
                f"cannot add PSDs with {self.n_bins} and {other.n_bins} bins")
        return DiscretePsd(self.ac + other.ac, self.mean + other.mean)

    def scaled(self, gain: float) -> "DiscretePsd":
        """PSD after multiplication of the signal by a constant ``gain``."""
        return DiscretePsd(self.ac * gain * gain, self.mean * gain)

    def __mul__(self, gain):
        if np.isscalar(gain):
            return self.scaled(float(gain))
        return NotImplemented

    __rmul__ = __mul__

    def filtered(self, frequency_response: np.ndarray) -> "DiscretePsd":
        """PSD after passing through an LTI system (Eq. 11).

        Parameters
        ----------
        frequency_response:
            Complex (or magnitude) frequency response of the system sampled
            on the same ``n_bins`` full-circle grid as this PSD.  The
            squared magnitude shapes the AC part; the real part of the DC
            response scales the mean.
        """
        response = np.asarray(frequency_response)
        if len(response) != self.n_bins:
            raise ValueError(
                f"frequency response has {len(response)} points, expected "
                f"{self.n_bins}")
        magnitude_sq = np.abs(response) ** 2
        dc_gain = float(np.real(response[0]))
        return DiscretePsd(self.ac * magnitude_sq, self.mean * dc_gain)

    def delayed(self) -> "DiscretePsd":
        """PSD after a pure delay (unchanged — delays are all-pass)."""
        return self.copy()

    # ------------------------------------------------------------------
    # Multirate transformations
    # ------------------------------------------------------------------
    def downsampled(self, factor: int = 2) -> "DiscretePsd":
        """PSD after down-sampling by ``factor`` (spectral folding).

        The per-sample power of a WSS signal is unchanged by decimation;
        the AC spectrum folds (aliases) onto ``n_bins / factor`` bins and
        the mean is preserved.
        """
        from repro.lti.multirate import downsample_psd
        return DiscretePsd(downsample_psd(self.ac, factor), self.mean)

    def upsampled(self, factor: int = 2) -> "DiscretePsd":
        """PSD after zero-insertion up-sampling by ``factor`` (imaging).

        Only one sample in ``factor`` is non-zero, so the per-sample power
        and the mean both shrink by ``factor``; the AC spectrum is imaged
        ``factor`` times.
        """
        from repro.lti.multirate import upsample_psd
        return DiscretePsd(upsample_psd(self.ac, factor), self.mean / factor)

    # ------------------------------------------------------------------
    # Resampling of the frequency grid
    # ------------------------------------------------------------------
    def resampled(self, n_bins: int) -> "DiscretePsd":
        """Re-express the PSD on a different number of bins.

        Total power is preserved exactly.  Down-sampling the grid sums
        groups of bins; up-sampling spreads each bin uniformly over the
        new bins it covers.
        """
        _check_bins(n_bins)
        if n_bins == self.n_bins:
            return self.copy()
        old_n = self.n_bins
        if n_bins < old_n and old_n % n_bins == 0:
            group = old_n // n_bins
            ac = self.ac.reshape(n_bins, group).sum(axis=1)
            return DiscretePsd(ac, self.mean)
        if n_bins > old_n and n_bins % old_n == 0:
            expand = n_bins // old_n
            ac = np.repeat(self.ac / expand, expand)
            return DiscretePsd(ac, self.mean)
        # General case: piecewise-constant density re-binning.
        edges_old = np.linspace(0.0, 1.0, old_n + 1)
        edges_new = np.linspace(0.0, 1.0, n_bins + 1)
        cumulative = np.concatenate([[0.0], np.cumsum(self.ac)])
        cumulative_at = np.interp(edges_new, edges_old, cumulative)
        ac = np.diff(cumulative_at)
        return DiscretePsd(ac, self.mean)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def allclose(self, other: "DiscretePsd", rtol: float = 1e-9,
                 atol: float = 1e-12) -> bool:
        """Whether two PSDs are numerically identical."""
        return (self.n_bins == other.n_bins
                and np.allclose(self.ac, other.ac, rtol=rtol, atol=atol)
                and np.isclose(self.mean, other.mean, rtol=rtol, atol=atol))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DiscretePsd(n_bins={self.n_bins}, mean={self.mean:.3e}, "
                f"variance={self.variance:.3e})")


def _check_bins(n_bins: int) -> None:
    if n_bins < 1:
        raise ValueError(f"a PSD needs at least one bin, got {n_bins}")
