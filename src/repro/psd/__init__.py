"""Power-spectral-density substrate.

The proposed accuracy-evaluation method (Section III of the paper)
represents every quantization-noise signal by a *discrete PSD* sampled on
``N_PSD`` frequency bins plus its (signed) mean, and propagates that
representation through the blocks of the system.  This subpackage
provides:

* :class:`~repro.psd.spectrum.DiscretePsd` — the noise-spectrum container
  and its algebra (filtering, addition, scaling, resampling, multirate
  transformations).
* :mod:`~repro.psd.estimation` — periodogram / Welch estimation of a
  :class:`DiscretePsd` from sample data (used to build reference spectra
  from simulation).
* :mod:`~repro.psd.propagation` — the per-source tracked propagation used
  when re-convergent (correlated) noise paths must be handled exactly
  (Eqs. 12–13), and helpers shared by the evaluation engines.
* :mod:`~repro.psd.cross_spectrum` — cross-spectral estimation between two
  signals, used in tests to validate the correlated-path handling.
"""

from repro.psd.spectrum import DiscretePsd
from repro.psd.batch import PsdStack
from repro.psd.estimation import (
    estimate_psd,
    estimate_psd_batch,
    periodogram,
    welch,
    welch_batched,
)
from repro.psd.propagation import TrackedSpectrum
from repro.psd.cross_spectrum import cross_power_spectrum

__all__ = [
    "DiscretePsd",
    "PsdStack",
    "estimate_psd",
    "estimate_psd_batch",
    "periodogram",
    "welch",
    "welch_batched",
    "TrackedSpectrum",
    "cross_power_spectrum",
]
