"""Per-source tracked propagation of quantization-noise spectra.

The hierarchical PSD method of the paper propagates one
:class:`~repro.psd.spectrum.DiscretePsd` per signal and adds PSDs at
adders under the uncorrelated assumption (Eq. 14).  When a single noise
source reaches an adder through *two different paths* (re-convergent
fan-out, as in the synthesis side of a wavelet filter bank), the two
contributions are fully correlated and Eq. 12's cross-spectra must be
taken into account.

:class:`TrackedSpectrum` implements the exact treatment: for every noise
source ``i`` it stores the *complex* frequency response ``G_i(F)`` of the
path from the source to the current signal, sampled on the ``N_PSD``
bins.  Adding two tracked spectra adds the complex responses source by
source, so the cross terms ``G_a G_b*`` appear automatically when the
magnitude is finally squared:

    ``S(F) = sum_i sigma_i^2 / N * |G_i(F)|^2``
    ``mean = sum_i mu_i * Re(G_i(0))``

Collapsing a :class:`TrackedSpectrum` to a :class:`DiscretePsd` therefore
yields the correlated-aware result; the PSD-agnostic and plain-PSD engines
never build the cross terms and exhibit the corresponding estimation
errors, which is precisely the effect the paper quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.noise_model import NoiseStats
from repro.psd.spectrum import DiscretePsd


class TrackedSpectrum:
    """Noise spectrum with per-source complex path responses.

    Parameters
    ----------
    n_bins:
        Number of frequency bins.
    sources:
        Mapping from source identifier to a pair ``(stats, response)``
        where ``stats`` is the :class:`NoiseStats` of the white source and
        ``response`` is the complex path response from the source to the
        tracked signal (array of length ``n_bins``).
    """

    __slots__ = ("n_bins", "sources")

    def __init__(self, n_bins: int, sources: dict | None = None):
        if n_bins < 1:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        self.n_bins = n_bins
        self.sources: dict = {}
        if sources:
            for key, (stats, response) in sources.items():
                response = np.asarray(response, dtype=complex)
                if len(response) != n_bins:
                    raise ValueError(
                        f"source {key!r} has a response of length "
                        f"{len(response)}, expected {n_bins}")
                self.sources[key] = (stats, response)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, n_bins: int) -> "TrackedSpectrum":
        """A signal carrying no noise at all."""
        return cls(n_bins)

    @classmethod
    def from_source(cls, source_id, stats: NoiseStats,
                    n_bins: int) -> "TrackedSpectrum":
        """A fresh white noise source observed at its injection point."""
        response = np.ones(n_bins, dtype=complex)
        return cls(n_bins, {source_id: (stats, response)})

    # ------------------------------------------------------------------
    # Propagation operations
    # ------------------------------------------------------------------
    def filtered(self, frequency_response: np.ndarray) -> "TrackedSpectrum":
        """Propagate through an LTI block with the given complex response."""
        response = np.asarray(frequency_response, dtype=complex)
        if len(response) != self.n_bins:
            raise ValueError(
                f"frequency response has {len(response)} points, expected "
                f"{self.n_bins}")
        sources = {key: (stats, path * response)
                   for key, (stats, path) in self.sources.items()}
        return TrackedSpectrum(self.n_bins, sources)

    def scaled(self, gain: float) -> "TrackedSpectrum":
        """Propagate through a constant gain."""
        sources = {key: (stats, path * gain)
                   for key, (stats, path) in self.sources.items()}
        return TrackedSpectrum(self.n_bins, sources)

    def __add__(self, other: "TrackedSpectrum") -> "TrackedSpectrum":
        """Convergence of two signals at an adder (exact, Eq. 12)."""
        if not isinstance(other, TrackedSpectrum):
            return NotImplemented
        if other.n_bins != self.n_bins:
            raise ValueError(
                f"cannot add spectra with {self.n_bins} and {other.n_bins} bins")
        sources = {key: (stats, path.copy())
                   for key, (stats, path) in self.sources.items()}
        for key, (stats, path) in other.sources.items():
            if key in sources:
                existing_stats, existing_path = sources[key]
                sources[key] = (existing_stats, existing_path + path)
            else:
                sources[key] = (stats, path.copy())
        return TrackedSpectrum(self.n_bins, sources)

    def with_source(self, source_id, stats: NoiseStats) -> "TrackedSpectrum":
        """Add a new white noise source injected at this point."""
        if source_id in self.sources:
            raise ValueError(f"source {source_id!r} already present")
        sources = dict(self.sources)
        sources[source_id] = (stats, np.ones(self.n_bins, dtype=complex))
        return TrackedSpectrum(self.n_bins, sources)

    # ------------------------------------------------------------------
    # Collapse
    # ------------------------------------------------------------------
    def to_psd(self) -> DiscretePsd:
        """Collapse to a :class:`DiscretePsd`, cross-terms included."""
        ac = np.zeros(self.n_bins)
        mean = 0.0
        for stats, response in self.sources.values():
            magnitude_sq = np.abs(response) ** 2
            ac += stats.variance / self.n_bins * magnitude_sq
            mean += stats.mean * float(np.real(response[0]))
        return DiscretePsd(ac, mean)

    def to_psd_uncorrelated(self) -> DiscretePsd:
        """Collapse assuming distinct sources only (never cross paths).

        Identical to :meth:`to_psd` because distinct sources are
        independent; the method exists to make the intent explicit at call
        sites and for symmetry with the block-level engines.
        """
        return self.to_psd()

    @property
    def total_power(self) -> float:
        """Total noise power at the tracked signal."""
        return self.to_psd().total_power

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TrackedSpectrum(n_bins={self.n_bins}, "
                f"sources={len(self.sources)})")


def cross_spectrum_contribution(psd_a: DiscretePsd, psd_b: DiscretePsd,
                                correlation: np.ndarray) -> np.ndarray:
    """Cross-spectral power added when two partially correlated signals sum.

    Parameters
    ----------
    psd_a, psd_b:
        Auto-PSDs of the two signals.
    correlation:
        Complex per-bin correlation coefficient (coherence with phase)
        between the two signals; 0 means uncorrelated, 1 fully correlated
        in phase, -1 fully correlated in anti-phase.

    Returns
    -------
    numpy.ndarray
        The term ``S_ab + S_ba = 2 Re(correlation) sqrt(S_a S_b)`` per bin,
        which an adder contributes on top of ``S_a + S_b`` (Eq. 12).
    """
    correlation = np.asarray(correlation)
    if len(correlation) != psd_a.n_bins or psd_a.n_bins != psd_b.n_bins:
        raise ValueError("PSDs and correlation must share the same bin count")
    return 2.0 * np.real(correlation) * np.sqrt(psd_a.ac * psd_b.ac)
