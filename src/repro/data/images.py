"""Synthetic grayscale images replacing the USC-SIPI / Brodatz corpora.

The DWT experiment of the paper (Fig. 3 / Fig. 7) runs on 196 grayscale
photographs and texture images.  What the accuracy analysis actually needs
from those images is a realistic *spatial spectrum* (strongly low-pass
with residual texture energy) and a bounded dynamic range; the generators
below provide surrogates with exactly those properties:

* :func:`natural_image` — 2-D ``1/f``-spectrum random fields, the standard
  statistical model of natural photographs;
* :func:`texture_image` — oriented band-pass random fields mimicking
  Brodatz-style textures;
* :func:`gradient_image`, :func:`checkerboard_image` — deterministic
  structured patterns exercising DC-dominant and Nyquist-dominant content.

All images are returned as float arrays in ``[0, 1)`` so they can be fed
directly to the fixed-point codec (which interprets them as Q0.d values).
"""

from __future__ import annotations

import numpy as np


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def _normalize(image: np.ndarray, low: float = 0.0,
               high: float = 0.999) -> np.ndarray:
    minimum = float(np.min(image))
    maximum = float(np.max(image))
    if maximum == minimum:
        return np.full_like(image, (low + high) / 2.0)
    return low + (image - minimum) * (high - low) / (maximum - minimum)


def natural_image(size: int = 128, exponent: float = 2.0,
                  seed: int | None = None) -> np.ndarray:
    """Random field with an isotropic ``1/f^exponent`` power spectrum."""
    _check_size(size)
    rng = _rng(seed)
    spectrum = np.fft.fft2(rng.standard_normal((size, size)))
    fy = np.fft.fftfreq(size)[:, None]
    fx = np.fft.fftfreq(size)[None, :]
    radius = np.sqrt(fx ** 2 + fy ** 2)
    shaping = np.zeros_like(radius)
    nonzero = radius > 0
    shaping[nonzero] = radius[nonzero] ** (-exponent / 2.0)
    image = np.real(np.fft.ifft2(spectrum * shaping))
    return _normalize(image)


def texture_image(size: int = 128, orientation: float = 0.0,
                  center_frequency: float = 0.2, bandwidth: float = 0.1,
                  seed: int | None = None) -> np.ndarray:
    """Oriented band-pass random field (Brodatz-like texture surrogate).

    Parameters
    ----------
    size:
        Image side length.
    orientation:
        Dominant texture orientation in radians.
    center_frequency:
        Radial center frequency of the texture energy (cycles/pixel).
    bandwidth:
        Radial bandwidth of the texture energy.
    """
    _check_size(size)
    rng = _rng(seed)
    spectrum = np.fft.fft2(rng.standard_normal((size, size)))
    fy = np.fft.fftfreq(size)[:, None]
    fx = np.fft.fftfreq(size)[None, :]
    radius = np.sqrt(fx ** 2 + fy ** 2)
    angle = np.arctan2(fy, fx)
    radial = np.exp(-0.5 * ((radius - center_frequency) / bandwidth) ** 2)
    angular = np.cos(angle - orientation) ** 2
    image = np.real(np.fft.ifft2(spectrum * radial * angular))
    # Add a low-pass pedestal so the image keeps natural-image DC content.
    pedestal = natural_image(size, exponent=2.0,
                             seed=None if seed is None else seed + 17)
    return _normalize(0.7 * _normalize(image) + 0.3 * pedestal)


def gradient_image(size: int = 128, direction: str = "diagonal") -> np.ndarray:
    """Smooth deterministic gradient (DC-dominant content)."""
    _check_size(size)
    ramp = np.linspace(0.0, 0.999, size)
    if direction == "horizontal":
        return np.tile(ramp, (size, 1))
    if direction == "vertical":
        return np.tile(ramp[:, None], (1, size))
    if direction == "diagonal":
        return _normalize(ramp[None, :] + ramp[:, None])
    raise ValueError(f"unknown gradient direction {direction!r}")


def checkerboard_image(size: int = 128, period: int = 8) -> np.ndarray:
    """Checkerboard pattern (high-frequency-dominant content)."""
    _check_size(size)
    if period < 2:
        raise ValueError(f"period must be at least 2, got {period}")
    rows = (np.arange(size) // (period // 2)) % 2
    board = np.logical_xor(rows[:, None], rows[None, :]).astype(float)
    return board * 0.999


class ImageGenerator:
    """Factory producing a corpus of surrogate images.

    ``corpus(count)`` mixes natural, texture and structured images in
    roughly the proportion of the photographic/texture databases used in
    the paper.
    """

    def __init__(self, size: int = 128, seed: int = 0):
        _check_size(size)
        self.size = size
        self.seed = seed

    def corpus(self, count: int) -> list[np.ndarray]:
        """Generate ``count`` images (deterministic for a given seed)."""
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        images: list[np.ndarray] = []
        for index in range(count):
            style = index % 4
            seed = self.seed * 7919 + index
            if style == 0:
                images.append(natural_image(self.size, 2.0, seed))
            elif style == 1:
                images.append(natural_image(self.size, 1.5, seed))
            elif style == 2:
                orientation = (index % 8) * np.pi / 8.0
                images.append(texture_image(self.size, orientation,
                                            0.15 + 0.02 * (index % 5),
                                            0.08, seed))
            else:
                images.append(gradient_image(self.size,
                                             ("horizontal", "vertical",
                                              "diagonal")[index % 3]))
        return images


def _check_size(size: int) -> None:
    if size < 8:
        raise ValueError(f"image size must be at least 8, got {size}")
