"""Synthetic data substrate.

The paper's experiments use long random/real-world stimuli (10^6 samples
for the filter bank, 10^7 for the frequency-domain filter, and 196
grayscale images from the USC-SIPI / RPI-CIPR / Brodatz corpora for the
DWT codec).  Those corpora are not redistributable, so this subpackage
generates synthetic surrogates with the statistical properties the
experiments rely on: wide-band excitation for the filters and
low-pass / textured spatial spectra for the images.
"""

from repro.data.signals import (
    SignalGenerator,
    ar1_process,
    chirp,
    colored_noise,
    multitone,
    uniform_white_noise,
)
from repro.data.images import (
    ImageGenerator,
    checkerboard_image,
    gradient_image,
    natural_image,
    texture_image,
)

__all__ = [
    "SignalGenerator",
    "uniform_white_noise",
    "colored_noise",
    "multitone",
    "chirp",
    "ar1_process",
    "ImageGenerator",
    "natural_image",
    "texture_image",
    "gradient_image",
    "checkerboard_image",
]
