"""Synthetic one-dimensional stimuli.

All generators return float arrays with values bounded by ``amplitude`` so
that overflow never interferes with the precision-only error analysis (the
paper explicitly separates range and precision effects and studies the
latter).  Every generator accepts a ``seed`` for reproducibility.
"""

from __future__ import annotations

import numpy as np


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_white_noise(num_samples: int, amplitude: float = 1.0,
                        seed: int | None = None) -> np.ndarray:
    """Uniform white noise in ``[-amplitude, amplitude]``."""
    _check(num_samples, amplitude)
    return _rng(seed).uniform(-amplitude, amplitude, num_samples)


def colored_noise(num_samples: int, exponent: float = 1.0,
                  amplitude: float = 1.0, seed: int | None = None) -> np.ndarray:
    """Power-law (``1/f^exponent``) colored noise.

    ``exponent = 0`` is white noise, ``1`` pink noise and ``2`` brown
    noise.  The record is normalized to the requested peak amplitude.
    """
    _check(num_samples, amplitude)
    rng = _rng(seed)
    white_spectrum = np.fft.rfft(rng.standard_normal(num_samples))
    frequencies = np.fft.rfftfreq(num_samples)
    shaping = np.ones_like(frequencies)
    nonzero = frequencies > 0
    shaping[nonzero] = frequencies[nonzero] ** (-exponent / 2.0)
    shaping[0] = 0.0
    shaped = np.fft.irfft(white_spectrum * shaping, n=num_samples)
    peak = np.max(np.abs(shaped))
    if peak == 0.0:
        return shaped
    return shaped / peak * amplitude


def multitone(num_samples: int, frequencies, amplitude: float = 1.0,
              seed: int | None = None) -> np.ndarray:
    """Sum of sinusoids at the given normalized frequencies (1.0 = Nyquist).

    Random phases make successive draws statistically independent; the sum
    is normalized to the requested peak amplitude.
    """
    _check(num_samples, amplitude)
    rng = _rng(seed)
    n = np.arange(num_samples)
    signal = np.zeros(num_samples)
    for frequency in np.atleast_1d(frequencies):
        phase = rng.uniform(0.0, 2.0 * np.pi)
        signal += np.sin(np.pi * frequency * n + phase)
    peak = np.max(np.abs(signal))
    if peak == 0.0:
        return signal
    return signal / peak * amplitude


def chirp(num_samples: int, start_frequency: float = 0.01,
          end_frequency: float = 0.99, amplitude: float = 1.0) -> np.ndarray:
    """Linear chirp sweeping between two normalized frequencies."""
    _check(num_samples, amplitude)
    n = np.arange(num_samples)
    sweep = start_frequency + (end_frequency - start_frequency) * n / num_samples
    phase = np.pi * np.cumsum(sweep)
    return amplitude * np.sin(phase)


def ar1_process(num_samples: int, pole: float = 0.9, amplitude: float = 1.0,
                seed: int | None = None) -> np.ndarray:
    """First-order autoregressive process (correlated in time).

    Parameters
    ----------
    pole:
        AR(1) coefficient, ``|pole| < 1``; values close to 1 give strongly
        low-pass (image-like) signals.
    """
    _check(num_samples, amplitude)
    if not -1.0 < pole < 1.0:
        raise ValueError(f"pole must be inside (-1, 1), got {pole}")
    rng = _rng(seed)
    innovations = rng.standard_normal(num_samples)
    signal = np.zeros(num_samples)
    for n in range(1, num_samples):
        signal[n] = pole * signal[n - 1] + innovations[n]
    peak = np.max(np.abs(signal))
    if peak == 0.0:
        return signal
    return signal / peak * amplitude


class SignalGenerator:
    """Named-stimulus factory used by the benchmark harnesses.

    Parameters
    ----------
    seed:
        Base seed; successive calls derive independent streams from it.
    """

    KINDS = ("white", "pink", "brown", "multitone", "chirp", "ar1")

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._counter = 0

    def _next_seed(self) -> int:
        self._counter += 1
        return self.seed * 1_000_003 + self._counter

    def generate(self, kind: str, num_samples: int,
                 amplitude: float = 0.9) -> np.ndarray:
        """Generate one stimulus of the requested kind."""
        kind = kind.lower()
        seed = self._next_seed()
        if kind == "white":
            return uniform_white_noise(num_samples, amplitude, seed)
        if kind == "pink":
            return colored_noise(num_samples, 1.0, amplitude, seed)
        if kind == "brown":
            return colored_noise(num_samples, 2.0, amplitude, seed)
        if kind == "multitone":
            return multitone(num_samples, [0.05, 0.12, 0.31, 0.64], amplitude, seed)
        if kind == "chirp":
            return chirp(num_samples, amplitude=amplitude)
        if kind == "ar1":
            return ar1_process(num_samples, 0.95, amplitude, seed)
        raise ValueError(f"unknown stimulus kind {kind!r}; expected one of "
                         f"{self.KINDS}")


def _check(num_samples: int, amplitude: float) -> None:
    if num_samples < 1:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    if amplitude <= 0:
        raise ValueError(f"amplitude must be positive, got {amplitude}")
