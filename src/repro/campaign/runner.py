"""Cache-aware, batched, parallel and fault-tolerant campaign execution.

Execution strategy:

* every job is first looked up in the content-addressed cache
  (:mod:`repro.campaign.cache`); hits never reach a worker;
* the remaining jobs are grouped *per scenario* and shipped as one
  payload each — a worker deserializes the scenario graph once, compiles
  one :class:`~repro.sfg.plan.CompiledPlan`, and runs every same-method
  job of the scenario through the configuration-batched evaluation paths
  (``evaluate_*_batch`` / ``SimulationEvaluator.evaluate_batch``), so a
  word-length grid costs one batched walk instead of one walk per grid
  point — and because all of a scenario's jobs share that one plan, they
  also share its :class:`~repro.analysis._engine.NoiseMemo`: the batched
  walks recompute only each grid's deviant cone, and the per-assignment
  ``psd_tracked`` loop pays one dirty-cone delta per grid point (the
  intra-graph counterpart of the cross-run content cache);
* with ``workers > 1`` the per-scenario payloads run on a
  :class:`~concurrent.futures.ProcessPoolExecutor` (payloads are plain
  JSON-compatible dicts, so they pickle under any start method);
* every completed record is written to the cache *and* appended to a
  JSONL stream immediately, so a killed campaign loses at most the jobs
  in flight — re-running the same spec resumes from the cache.

Fault tolerance (see :mod:`repro.campaign.faults` and ARCHITECTURE.md
§ Fault tolerance): the driver loop is a supervisor.  Each payload gets
a bounded number of attempts with deterministic backoff and an optional
wall-clock timeout; a payload that keeps failing is **bisected** so one
poisoned grid point no longer discards its batch-mates' results, and the
isolated offender is quarantined as a structured ``status="failed"``
record — streamed and reported, but never cached (no negative caching).
A broken process pool is rebuilt and its unfinished payloads
re-dispatched, degrading to inline execution after repeated deaths; a
hung payload's pool is abandoned the same way.  ``KeyboardInterrupt``
leaves the flushed JSONL tail behind and logs partial accounting.

Accounting runs on a per-campaign :class:`~repro.obs.MetricsRegistry`
(``campaign.cache.hits`` / ``campaign.cache.misses`` /
``campaign.jobs.skipped`` plus the fault counters ``campaign.retries``,
``campaign.payload.bisections``, ``campaign.jobs.failed`` and
``campaign.pool.rebuilds``); :class:`CampaignResult` is a view over
those counters, a one-line summary is logged at the finish line, and —
when a process-wide observability session is enabled — the registry is
published into it and every job (cached or computed, driver or pool
worker) leaves a ``campaign.job`` trace span keyed by its content hash.
"""

from __future__ import annotations

import json
import logging
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.analysis.agnostic_method import evaluate_agnostic_batch
from repro.analysis.flat_method import evaluate_flat_batch
from repro.analysis.psd_method import evaluate_psd_batch, evaluate_psd_tracked
from repro.analysis.simulation_method import SimulationEvaluator
from repro.campaign.cache import ResultCache
from repro.campaign.faults import FaultInjector, RetryPolicy
from repro.campaign.jobs import (
    STATUS_FAILED,
    CampaignSpec,
    PreparedScenario,
    StimulusSpec,
    base_record,
    expand_campaign,
    failure_record,
)
from repro.obs import record_span, span
from repro.sfg.plan import compile_plan
from repro.sfg.serialization import graph_from_dict

logger = logging.getLogger("repro.campaign.runner")


@dataclass
class CampaignResult:
    """Outcome of one campaign run.

    ``records`` holds one dict per grid point (cached, computed and
    quarantined alike), in a deterministic order (scenario order, then
    method, then wordlength).  Grid points from overlapping scenario
    entries that collapse to the same job key are computed once; such
    duplicates are counted as cache hits (served from the first
    computation).  Quarantined jobs appear as ``status="failed"``
    records and are counted in ``failed`` — they are never cached, so a
    re-run retries them.
    """

    records: list = field(default_factory=list)
    cache_hits: int = 0
    computed: int = 0
    skipped_unsupported: int = 0
    failed: int = 0
    retries: int = 0
    bisections: int = 0
    pool_rebuilds: int = 0
    elapsed_seconds: float = 0.0

    @property
    def total_jobs(self) -> int:
        """Grid points the campaign expanded to (hits + computed +
        failed)."""
        return self.cache_hits + self.computed + self.failed

    @property
    def hit_rate(self) -> float:
        """Fraction of jobs served from the cache (0.0 when no jobs)."""
        return self.cache_hits / self.total_jobs if self.total_jobs else 0.0

    @property
    def failed_records(self) -> list:
        """The quarantined ``status="failed"`` records, in grid order."""
        return [record for record in self.records
                if record.get("status") == STATUS_FAILED]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _scenario_payload(scenario: PreparedScenario, jobs: list) -> dict:
    """JSON-compatible work order for one scenario (picklable under any
    multiprocessing start method).  Each job dict carries its dispatch
    ``attempt`` counter so worker-side chaos injection can distinguish a
    first dispatch from a retry."""
    return {
        "scenario": scenario.spec.name,
        "signature": scenario.signature,
        "params": dict(jobs[0].params),
        "graph": scenario.graph_dict,
        "stimulus": scenario.stimulus.canonical(),
        "seed": jobs[0].seed,
        "jobs": [{"key": job.key, "method": job.method,
                  "wordlength": job.wordlength,
                  "assignment": dict(job.assignment),
                  "n_psd": job.n_psd, "attempt": 0} for job in jobs],
    }


def execute_scenario_payload(payload: dict) -> list[dict]:
    """Run every job of one scenario payload; returns result records.

    This is the function a pool worker executes.  The scenario graph is
    rebuilt from its serialized form and compiled once; jobs are grouped
    by method and each analytical group runs as a single
    configuration-batched walk.  The Monte-Carlo group shares one
    stimulus realization and the batched reference-run sharing of
    :meth:`SimulationEvaluator.evaluate_batch`.
    """
    with span("campaign.payload", scenario=payload["scenario"],
              jobs=len(payload["jobs"])):
        return _execute_payload(payload)


def _execute_payload(payload: dict) -> list[dict]:
    chaos = payload.get("chaos")
    if chaos is not None:
        # Armed chaos harness: fire any fault planned for this payload's
        # jobs before the (expensive) computation starts.  A fired fault
        # costs the whole payload — exactly the blast radius a real
        # mid-payload failure has — and the supervisor's retry/bisection
        # machinery is what contains it.
        injector = FaultInjector.from_config(chaos)
        for job in payload["jobs"]:
            injector.fire(job["key"], job.get("attempt", 0))
    graph = graph_from_dict(payload["graph"])
    plan = compile_plan(graph)
    stimulus_spec = StimulusSpec.from_dict(payload["stimulus"])
    records: list[dict] = []

    by_method: dict[str, list[dict]] = {}
    for job in payload["jobs"]:
        by_method.setdefault(job["method"], []).append(job)

    for method, jobs in by_method.items():
        assignments = [job["assignment"] for job in jobs]
        start_ts = time.time()
        start = time.perf_counter()
        if method == "psd":
            stack = evaluate_psd_batch(plan, jobs[0]["n_psd"], assignments)
            powers = stack.total_power
            means, variances = stack.mean, stack.variance
        elif method == "agnostic":
            stats = evaluate_agnostic_batch(plan, assignments)
            powers, means, variances = stats.power, stats.mean, stats.variance
        elif method == "flat":
            stats = evaluate_flat_batch(plan, assignments)
            powers, means, variances = stats.power, stats.mean, stats.variance
        elif method == "psd_tracked":
            # No batched variant: correlation-exact tracking is per
            # config; the plan (and its response caches) is still shared.
            powers, means, variances = [], [], []
            with plan.preserve_quantization():
                for assignment in assignments:
                    plan.requantize(assignment)
                    psd = evaluate_psd_tracked(plan, jobs[0]["n_psd"])
                    powers.append(psd.total_power)
                    means.append(psd.mean)
                    variances.append(psd.variance)
        elif method == "simulation":
            stimulus = stimulus_spec.realize(plan.input_names,
                                             payload["seed"])
            evaluator = SimulationEvaluator(plan)
            measurements = evaluator.evaluate_batch(
                assignments, stimulus,
                discard_transient=stimulus_spec.discard_transient)
            powers = [m.error_power for m in measurements]
            means = [m.error_mean for m in measurements]
            variances = [m.error_variance for m in measurements]
        else:
            raise ValueError(f"unknown job method {method!r}")
        elapsed = time.perf_counter() - start
        record_span("campaign.method", start_ts, elapsed,
                    scenario=payload["scenario"], method=method,
                    jobs=len(jobs))

        share = elapsed / len(jobs)
        for index, job in enumerate(jobs):
            # One trace span per job: the batched computation's wall time
            # is attributed evenly across the grid points it served, and
            # the content key lets driver- and worker-side spans of the
            # same job line up in the merged trace.
            record_span("campaign.job", start_ts + index * share, share,
                        depth_offset=1, key=job["key"], method=method,
                        scenario=payload["scenario"], cached=False)
            record = base_record(payload, job)
            record.update(
                power=float(np.asarray(powers)[index]),
                mean=float(np.asarray(means)[index]),
                variance=float(np.asarray(variances)[index]),
                elapsed_seconds=elapsed / len(jobs),
                batched_with=len(jobs))
            if method in ("psd", "psd_tracked"):
                record["n_psd"] = job["n_psd"]
            if method == "simulation":
                record["num_samples"] = stimulus_spec.num_samples
            records.append(record)
    return records


def execute_scenario_payload_observed(payload: dict,
                                      trace: bool = True) -> dict:
    """Pool entry point when the driver has observability enabled.

    A pool worker is a fresh process with no observability session, so
    one is opened around the payload and its measurements are shipped
    home with the records: ``{"records", "spans", "metrics"}``.  Span
    timestamps are epoch-based (``time.time()``), so worker spans merge
    onto the driver's clock without translation.
    """
    with obs.observe(trace=trace) as session:
        records = execute_scenario_payload(payload)
    return {
        "records": records,
        "spans": session.trace.snapshot() if session.trace else [],
        "metrics": session.metrics.snapshot(),
    }


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
class _JsonlWriter:
    """Append-mode JSONL stream, flushed per record (crash-safe tail)."""

    def __init__(self, path: str | Path | None):
        self._stream = None
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = path.open("a")

    def __enter__(self) -> "_JsonlWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def write(self, record: dict) -> None:
        if self._stream is not None:
            self._stream.write(json.dumps(record) + "\n")
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


@dataclass
class _WorkItem:
    """One dispatchable unit: a scenario's (sub)set of uncached jobs.

    ``attempt`` counts failed dispatches of this payload; each job dict
    carries its own ``attempt`` counter (monotonic across bisection)
    that gates transient chaos faults and is reported on quarantine.
    ``deadline`` is the ``time.monotonic()`` instant after which an
    in-flight payload is declared hung.
    """

    base: dict
    jobs: list
    attempt: int = 0
    deadline: float | None = None


class _Supervisor:
    """The fault-tolerant driver loop: dispatch, retry, bisect, quarantine.

    State machine per payload::

        dispatched --ok--------------------------> absorbed
            |  failure / timeout
            v
        attempt += 1 --< max_attempts--> backoff, re-dispatch   (retry)
            |  attempts exhausted
            v
        jobs > 1 --> split in half, re-dispatch both halves     (bisect)
        jobs == 1 -> structured status="failed" record          (quarantine)

    Pool-level failures are handled around that machine: a broken pool
    is rebuilt and every in-flight payload re-dispatched (advanced one
    attempt — the crashed payload cannot be told apart from its pool
    mates — but never straight into quarantine: a pool death is not
    evidence against any one payload), degrading to inline execution
    after ``MAX_POOL_DEATHS``; a hung payload's pool is abandoned (a
    running worker cannot be cancelled) and only the expired payloads
    are charged an attempt.
    """

    #: Pool deaths tolerated before degrading to inline execution.
    MAX_POOL_DEATHS = 3

    def __init__(self, *, policy: RetryPolicy,
                 injector: FaultInjector | None, workers: int,
                 observed: bool, trace_on: bool, registry,
                 absorb, quarantine):
        self.policy = policy
        self.injector = injector
        self.workers = workers
        self.observed = observed
        self.trace_on = trace_on
        self.absorb = absorb
        self.quarantine = quarantine
        self.retries = registry.counter("campaign.retries")
        self.bisections = registry.counter("campaign.payload.bisections")
        self.failed = registry.counter("campaign.jobs.failed")
        self.rebuilds = registry.counter("campaign.pool.rebuilds")
        self.queue: deque = deque()
        self.active: dict = {}
        self.pool = None
        self.pool_deaths = 0
        self.degraded = False

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, payloads: list[dict]) -> None:
        for payload in payloads:
            base = {key: value for key, value in payload.items()
                    if key != "jobs"}
            self.queue.append(_WorkItem(base=base, jobs=payload["jobs"]))
        if self.workers > 1 and len(payloads) > 1:
            self._run_pool()
        # Inline covers the single-payload / single-worker case and the
        # remainder after the pool path degraded.
        self._run_inline()

    def _payload(self, item: _WorkItem, inline: bool) -> dict:
        payload = dict(item.base)
        payload["jobs"] = item.jobs
        if self.injector is not None:
            # Inline execution converts crash/hang faults to exceptions:
            # os._exit here would kill the driver itself.
            payload["chaos"] = self.injector.config(inline=inline)
        return payload

    # ------------------------------------------------------------------
    # Pool path
    # ------------------------------------------------------------------
    def _run_pool(self) -> None:
        try:
            while (self.queue or self.active) and not self.degraded:
                if self.pool is None:
                    self.pool = ProcessPoolExecutor(max_workers=self.workers)
                self._submit_ready()
                if not self.active:
                    continue
                done, _ = wait(set(self.active), timeout=self._tick(),
                               return_when=FIRST_COMPLETED)
                if done:
                    self._collect(done)
                else:
                    self._expire_hung()
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=False, cancel_futures=True)
                self.pool = None

    def _submit_ready(self) -> None:
        # At most ``workers`` payloads in flight: the per-payload
        # timeout clock starts at submission, so queueing more than the
        # pool can start would charge wait time against the deadline.
        while self.queue and len(self.active) < self.workers:
            item = self.queue.popleft()
            payload = self._payload(item, inline=False)
            try:
                if self.observed:
                    future = self.pool.submit(
                        execute_scenario_payload_observed, payload,
                        self.trace_on)
                else:
                    future = self.pool.submit(execute_scenario_payload,
                                              payload)
            except BrokenProcessPool:
                self.queue.appendleft(item)
                self._pool_died()
                return
            if self.policy.payload_timeout is not None:
                item.deadline = (time.monotonic()
                                 + self.policy.payload_timeout)
            self.active[future] = item

    def _tick(self) -> float | None:
        deadlines = [item.deadline for item in self.active.values()
                     if item.deadline is not None]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic())

    def _collect(self, done) -> None:
        for future in done:
            item = self.active.pop(future, None)
            if item is None:
                continue  # cleared by a pool rebuild earlier this batch
            try:
                result = future.result()
            except BrokenProcessPool:
                self.active[future] = item
                self._pool_died()
                return
            except Exception as error:
                self._dispatch_failed(item, error)
            else:
                if self.observed:
                    obs.ingest_spans(result["spans"])
                    obs.publish_metrics(result["metrics"])
                    result = result["records"]
                item.deadline = None
                self.absorb(result)

    def _pool_died(self) -> None:
        self.pool_deaths += 1
        for item in self.active.values():
            # The crashed payload cannot be told apart from its pool
            # mates, so every in-flight payload advances one attempt —
            # enough to skip a transient crash fault on re-dispatch —
            # but capped below quarantine: a pool death is not evidence
            # against any one payload.
            item.attempt = min(item.attempt + 1,
                               self.policy.max_attempts - 1)
            for job in item.jobs:
                job["attempt"] = job.get("attempt", 0) + 1
            item.deadline = None
            self.queue.append(item)
        self.active.clear()
        self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = None
        if self.pool_deaths >= self.MAX_POOL_DEATHS:
            self.degraded = True
            logger.warning(
                "campaign worker pool died %d times; degrading to inline "
                "execution for the remaining %d payload(s)",
                self.pool_deaths, len(self.queue))
        else:
            self.rebuilds.inc()
            logger.warning(
                "campaign worker pool died (%d so far); rebuilding and "
                "re-dispatching %d payload(s)",
                self.pool_deaths, len(self.queue))

    def _expire_hung(self) -> None:
        now = time.monotonic()
        expired, healthy = [], []
        for item in self.active.values():
            if item.deadline is not None and item.deadline <= now:
                expired.append(item)
            else:
                healthy.append(item)
        if not expired:
            return  # spurious wakeup
        # A hung worker cannot be cancelled, only abandoned: the whole
        # pool is torn down (its processes exit on their own once their
        # work returns) and a fresh pool takes over.  Healthy in-flight
        # payloads lost with the pool are re-queued uncharged.
        self.active.clear()
        self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = None
        self.rebuilds.inc()
        logger.warning(
            "abandoning pool: %d payload(s) exceeded the %.3g s timeout "
            "(%d healthy in-flight payload(s) re-queued)",
            len(expired), self.policy.payload_timeout, len(healthy))
        for item in healthy:
            item.deadline = None
            self.queue.append(item)
        for item in expired:
            item.deadline = None
            self._dispatch_failed(item, TimeoutError(
                f"payload exceeded the {self.policy.payload_timeout:g} s "
                "timeout"))

    # ------------------------------------------------------------------
    # Inline path
    # ------------------------------------------------------------------
    def _run_inline(self) -> None:
        while self.queue:
            item = self.queue.popleft()
            payload = self._payload(item, inline=True)
            try:
                records = execute_scenario_payload(payload)
            except Exception as error:
                self._dispatch_failed(item, error)
            else:
                self.absorb(records)

    # ------------------------------------------------------------------
    # Failure escalation (shared by both paths)
    # ------------------------------------------------------------------
    def _dispatch_failed(self, item: _WorkItem, error: BaseException) -> None:
        item.attempt += 1
        for job in item.jobs:
            job["attempt"] = job.get("attempt", 0) + 1
        if item.attempt < self.policy.max_attempts:
            self.retries.inc()
            if self.trace_on:
                record_span("campaign.retry", time.time(), 0.0,
                            scenario=item.base["scenario"],
                            jobs=len(item.jobs), attempt=item.attempt,
                            error=type(error).__name__)
            logger.info(
                "retrying payload %s (%d job(s), attempt %d/%d): %s",
                item.base["scenario"], len(item.jobs), item.attempt + 1,
                self.policy.max_attempts, error)
            delay = self.policy.delay(item.jobs[0]["key"], item.attempt)
            if delay > 0.0:
                time.sleep(delay)
            self.queue.append(item)
        elif len(item.jobs) > 1:
            # Retries exhausted: isolate the offender by bisection so
            # one poisoned grid point stops discarding its batch-mates'
            # results.  The halves get one attempt each — the payload
            # already proved persistently failing, so further retries
            # would only delay isolation.
            self.bisections.inc()
            if self.trace_on:
                record_span("campaign.bisect", time.time(), 0.0,
                            scenario=item.base["scenario"],
                            jobs=len(item.jobs),
                            error=type(error).__name__)
            logger.info(
                "bisecting persistently failing payload %s (%d jobs): %s",
                item.base["scenario"], len(item.jobs), error)
            middle = len(item.jobs) // 2
            for half in (item.jobs[:middle], item.jobs[middle:]):
                self.queue.append(_WorkItem(
                    base=item.base, jobs=half,
                    attempt=max(0, self.policy.max_attempts - 1)))
        else:
            job = item.jobs[0]
            self.failed.inc()
            logger.warning(
                "quarantining job %s (%s/%s, W=%s) after %d attempt(s): %s",
                job["key"][:12], item.base["scenario"], job["method"],
                job["wordlength"], job["attempt"], error)
            self.quarantine(item.base, job, error)


def run_campaign(spec: CampaignSpec,
                 cache: ResultCache | None = None,
                 cache_dir: str | Path | None = None,
                 output_path: str | Path | None = None,
                 workers: int = 1,
                 retry_policy: RetryPolicy | None = None,
                 fault_injector: FaultInjector | None = None
                 ) -> CampaignResult:
    """Run a campaign: expand, serve from cache, execute the rest.

    Parameters
    ----------
    spec:
        The campaign description (scenarios x methods x wordlengths).
    cache:
        An existing :class:`ResultCache`; mutually exclusive with
        ``cache_dir``.
    cache_dir:
        Directory of the content-addressed result cache; ``None`` (and no
        ``cache``) disables caching.
    output_path:
        When given, every record (cached, computed or failed) is
        appended to this JSONL file as soon as it is known.
    workers:
        Process-pool width for the per-scenario payloads; ``<= 1`` runs
        inline in this process (identical results).
    retry_policy:
        Supervision parameters (attempts, backoff, payload timeout);
        ``None`` uses :class:`RetryPolicy` defaults seeded from the
        campaign seed.  A fault-free run never retries, so the default
        policy leaves the fault-free path bit-identical.
    fault_injector:
        An **armed** chaos harness (:class:`FaultInjector`); ``None``
        (the default) injects nothing.

    Returns
    -------
    CampaignResult
        All records plus hit / compute / failure accounting.
    """
    if cache is not None and cache_dir is not None:
        raise ValueError("pass either cache or cache_dir, not both")
    if cache is None:
        cache = ResultCache(cache_dir)
    policy = retry_policy if retry_policy is not None \
        else RetryPolicy(seed=spec.seed)
    if (fault_injector is not None and "hang" in fault_injector.kinds
            and policy.payload_timeout is None and workers > 1):
        logger.warning(
            "chaos includes hang faults but no payload_timeout is set; "
            "a hung payload blocks for the full hang_seconds (%.3g s)",
            fault_injector.hang_seconds)
    started = time.perf_counter()
    # Per-campaign accounting registry: always live (exact counts whether
    # or not observability is enabled), published into the process-wide
    # session — and summarised in the finish-line log — at the end.
    registry = obs.MetricsRegistry()
    hit_counter = registry.counter("campaign.cache.hits")
    miss_counter = registry.counter("campaign.cache.misses")
    skip_counter = registry.counter("campaign.jobs.skipped")
    failed_counter = registry.counter("campaign.jobs.failed")
    retry_counter = registry.counter("campaign.retries")
    trace_on = obs.tracing()
    prepared, _jobs, skipped = expand_campaign(spec)
    skip_counter.inc(skipped)
    try:
        with _JsonlWriter(output_path) as writer, \
                span("campaign.run", scenarios=len(prepared),
                     workers=workers):
            records_by_key: dict[str, dict] = {}
            pending: list[tuple[PreparedScenario, list]] = []
            scheduled: set[str] = set()
            for scenario in prepared:
                misses = []
                for job in scenario.jobs:
                    if job.key in scheduled:
                        # Identical grid point from an overlapping scenario
                        # entry: served from the first computation.
                        hit_counter.inc()
                        if trace_on:
                            record_span("campaign.job", time.time(), 0.0,
                                        key=job.key, scenario=job.scenario,
                                        method=job.method, cached=True,
                                        dedup=True)
                        continue
                    lookup_ts = time.time()
                    lookup_t0 = time.perf_counter()
                    cached = cache.get(job.key)
                    if cached is not None:
                        cached = {**cached, "cached": True}
                        records_by_key[job.key] = cached
                        writer.write(cached)
                        hit_counter.inc()
                        if trace_on:
                            record_span(
                                "campaign.job", lookup_ts,
                                time.perf_counter() - lookup_t0,
                                key=job.key, scenario=job.scenario,
                                method=job.method, cached=True)
                    else:
                        scheduled.add(job.key)
                        misses.append(job)
                if misses:
                    pending.append((scenario, misses))

            def absorb(records: list[dict]) -> None:
                for record in records:
                    record = {**record, "cached": False}
                    cache.put(record["key"], record)
                    if fault_injector is not None:
                        fault_injector.corrupt_record(cache, record["key"])
                    records_by_key[record["key"]] = record
                    writer.write(record)
                    miss_counter.inc()

            def quarantine(payload_base: dict, job: dict,
                           error: BaseException) -> None:
                # Quarantined jobs are streamed and reported but never
                # cached: no negative caching, a re-run retries them.
                record = failure_record(payload_base, job, error,
                                        attempts=job.get("attempt", 0))
                records_by_key[record["key"]] = record
                writer.write(record)
                if trace_on:
                    record_span("campaign.job", time.time(), 0.0,
                                key=record["key"],
                                scenario=record["scenario"],
                                method=record["method"], cached=False,
                                status=STATUS_FAILED)

            payloads = [_scenario_payload(scenario, jobs)
                        for scenario, jobs in pending]
            supervisor = _Supervisor(
                policy=policy, injector=fault_injector, workers=workers,
                observed=obs.enabled(), trace_on=trace_on,
                registry=registry, absorb=absorb, quarantine=quarantine)
            supervisor.run(payloads)
    except KeyboardInterrupt:
        # The JSONL tail is already flushed per record (and the writer
        # closed by its context manager); leave an accounting trail so
        # the partial run is diagnosable before the resume.
        logger.warning(
            "campaign interrupted: partial accounting — %d cached, "
            "%d computed, %d failed, %d retries; JSONL tail flushed to %s",
            hit_counter.value, miss_counter.value, failed_counter.value,
            retry_counter.value, output_path or "<no stream>")
        raise

    # Deterministic record order (expansion order), whatever the
    # completion order of the pool was.  A grid point served by another
    # entry's identical job (same content, e.g. factor=2 vs factor=2.0)
    # is relabeled with its own scenario identity and marked cached —
    # it was served from the first computation, matching how it is
    # counted in ``cache_hits`` — so reports and the runner accounting
    # always agree.
    ordered = []
    first_occurrence: set[str] = set()
    for scenario in prepared:
        for job in scenario.jobs:
            record = records_by_key[job.key]
            if job.key in first_occurrence:
                record = {**record, "cached": True}
            else:
                first_occurrence.add(job.key)
            if record["signature"] != job.signature:
                record = {**record, "scenario": job.scenario,
                          "signature": job.signature,
                          "params": dict(job.params)}
            ordered.append(record)
    elapsed = time.perf_counter() - started
    registry.gauge("campaign.elapsed_seconds").set(elapsed)
    result = CampaignResult(
        records=ordered,
        cache_hits=hit_counter.value,
        computed=miss_counter.value,
        skipped_unsupported=skip_counter.value,
        failed=failed_counter.value,
        retries=retry_counter.value,
        bisections=registry.counter("campaign.payload.bisections").value,
        pool_rebuilds=registry.counter("campaign.pool.rebuilds").value,
        elapsed_seconds=elapsed)
    obs.publish_metrics(registry.snapshot())
    logger.info(
        "campaign finished: %d jobs — %d cached (%.1f%% warm), %d computed, "
        "%d failed, %d skipped unsupported, %.3f s wall",
        result.total_jobs, result.cache_hits, 100.0 * result.hit_rate,
        result.computed, result.failed, result.skipped_unsupported, elapsed)
    if result.retries or result.bisections or result.pool_rebuilds:
        logger.info(
            "campaign faults: %d retries, %d bisections, %d pool rebuilds",
            result.retries, result.bisections, result.pool_rebuilds)
    return result
