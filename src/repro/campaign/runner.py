"""Cache-aware, batched, optionally parallel campaign execution.

Execution strategy:

* every job is first looked up in the content-addressed cache
  (:mod:`repro.campaign.cache`); hits never reach a worker;
* the remaining jobs are grouped *per scenario* and shipped as one
  payload each — a worker deserializes the scenario graph once, compiles
  one :class:`~repro.sfg.plan.CompiledPlan`, and runs every same-method
  job of the scenario through the configuration-batched evaluation paths
  (``evaluate_*_batch`` / ``SimulationEvaluator.evaluate_batch``), so a
  word-length grid costs one batched walk instead of one walk per grid
  point — and because all of a scenario's jobs share that one plan, they
  also share its :class:`~repro.analysis._engine.NoiseMemo`: the batched
  walks recompute only each grid's deviant cone, and the per-assignment
  ``psd_tracked`` loop pays one dirty-cone delta per grid point (the
  intra-graph counterpart of the cross-run content cache);
* with ``workers > 1`` the per-scenario payloads run on a
  :class:`~concurrent.futures.ProcessPoolExecutor` (payloads are plain
  JSON-compatible dicts, so they pickle under any start method);
* every completed record is written to the cache *and* appended to a
  JSONL stream immediately, so a killed campaign loses at most the jobs
  in flight — re-running the same spec resumes from the cache.

Accounting runs on a per-campaign :class:`~repro.obs.MetricsRegistry`
(``campaign.cache.hits`` / ``campaign.cache.misses`` /
``campaign.jobs.skipped``); :class:`CampaignResult` is a view over those
counters, a one-line summary is logged at the finish line, and — when a
process-wide observability session is enabled — the registry is
published into it and every job (cached or computed, driver or pool
worker) leaves a ``campaign.job`` trace span keyed by its content hash.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.analysis.agnostic_method import evaluate_agnostic_batch
from repro.analysis.flat_method import evaluate_flat_batch
from repro.analysis.psd_method import evaluate_psd_batch, evaluate_psd_tracked
from repro.analysis.simulation_method import SimulationEvaluator
from repro.campaign.cache import ResultCache
from repro.campaign.jobs import (
    CampaignSpec,
    PreparedScenario,
    StimulusSpec,
    expand_campaign,
)
from repro.obs import record_span, span
from repro.sfg.plan import compile_plan
from repro.sfg.serialization import graph_from_dict

logger = logging.getLogger("repro.campaign.runner")


@dataclass
class CampaignResult:
    """Outcome of one campaign run.

    ``records`` holds one dict per grid point (cached and computed
    alike), in a deterministic order (scenario order, then method, then
    wordlength).  Grid points from overlapping scenario entries that
    collapse to the same job key are computed once; such duplicates are
    counted as cache hits (served from the first computation).
    """

    records: list = field(default_factory=list)
    cache_hits: int = 0
    computed: int = 0
    skipped_unsupported: int = 0
    elapsed_seconds: float = 0.0

    @property
    def total_jobs(self) -> int:
        """Grid points the campaign expanded to (hits + computed)."""
        return self.cache_hits + self.computed

    @property
    def hit_rate(self) -> float:
        """Fraction of jobs served from the cache (0.0 when no jobs)."""
        return self.cache_hits / self.total_jobs if self.total_jobs else 0.0


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _scenario_payload(scenario: PreparedScenario, jobs: list) -> dict:
    """JSON-compatible work order for one scenario (picklable under any
    multiprocessing start method)."""
    return {
        "scenario": scenario.spec.name,
        "signature": scenario.signature,
        "params": dict(jobs[0].params),
        "graph": scenario.graph_dict,
        "stimulus": scenario.stimulus.canonical(),
        "seed": jobs[0].seed,
        "jobs": [{"key": job.key, "method": job.method,
                  "wordlength": job.wordlength,
                  "assignment": dict(job.assignment),
                  "n_psd": job.n_psd} for job in jobs],
    }


def _base_record(payload: dict, job: dict) -> dict:
    return {
        "key": job["key"],
        "scenario": payload["scenario"],
        "signature": payload["signature"],
        "params": payload["params"],
        "method": job["method"],
        "wordlength": job["wordlength"],
        "seed": payload["seed"],
        # Part of the report's estimate-vs-simulation join key: records
        # produced under different stimuli must never be joined.
        "stimulus": payload["stimulus"],
    }


def execute_scenario_payload(payload: dict) -> list[dict]:
    """Run every job of one scenario payload; returns result records.

    This is the function a pool worker executes.  The scenario graph is
    rebuilt from its serialized form and compiled once; jobs are grouped
    by method and each analytical group runs as a single
    configuration-batched walk.  The Monte-Carlo group shares one
    stimulus realization and the batched reference-run sharing of
    :meth:`SimulationEvaluator.evaluate_batch`.
    """
    with span("campaign.payload", scenario=payload["scenario"],
              jobs=len(payload["jobs"])):
        return _execute_payload(payload)


def _execute_payload(payload: dict) -> list[dict]:
    graph = graph_from_dict(payload["graph"])
    plan = compile_plan(graph)
    stimulus_spec = StimulusSpec.from_dict(payload["stimulus"])
    records: list[dict] = []

    by_method: dict[str, list[dict]] = {}
    for job in payload["jobs"]:
        by_method.setdefault(job["method"], []).append(job)

    for method, jobs in by_method.items():
        assignments = [job["assignment"] for job in jobs]
        start_ts = time.time()
        start = time.perf_counter()
        if method == "psd":
            stack = evaluate_psd_batch(plan, jobs[0]["n_psd"], assignments)
            powers = stack.total_power
            means, variances = stack.mean, stack.variance
        elif method == "agnostic":
            stats = evaluate_agnostic_batch(plan, assignments)
            powers, means, variances = stats.power, stats.mean, stats.variance
        elif method == "flat":
            stats = evaluate_flat_batch(plan, assignments)
            powers, means, variances = stats.power, stats.mean, stats.variance
        elif method == "psd_tracked":
            # No batched variant: correlation-exact tracking is per
            # config; the plan (and its response caches) is still shared.
            powers, means, variances = [], [], []
            with plan.preserve_quantization():
                for assignment in assignments:
                    plan.requantize(assignment)
                    psd = evaluate_psd_tracked(plan, jobs[0]["n_psd"])
                    powers.append(psd.total_power)
                    means.append(psd.mean)
                    variances.append(psd.variance)
        elif method == "simulation":
            stimulus = stimulus_spec.realize(plan.input_names,
                                             payload["seed"])
            evaluator = SimulationEvaluator(plan)
            measurements = evaluator.evaluate_batch(
                assignments, stimulus,
                discard_transient=stimulus_spec.discard_transient)
            powers = [m.error_power for m in measurements]
            means = [m.error_mean for m in measurements]
            variances = [m.error_variance for m in measurements]
        else:
            raise ValueError(f"unknown job method {method!r}")
        elapsed = time.perf_counter() - start
        record_span("campaign.method", start_ts, elapsed,
                    scenario=payload["scenario"], method=method,
                    jobs=len(jobs))

        share = elapsed / len(jobs)
        for index, job in enumerate(jobs):
            # One trace span per job: the batched computation's wall time
            # is attributed evenly across the grid points it served, and
            # the content key lets driver- and worker-side spans of the
            # same job line up in the merged trace.
            record_span("campaign.job", start_ts + index * share, share,
                        depth_offset=1, key=job["key"], method=method,
                        scenario=payload["scenario"], cached=False)
            record = _base_record(payload, job)
            record.update(
                power=float(np.asarray(powers)[index]),
                mean=float(np.asarray(means)[index]),
                variance=float(np.asarray(variances)[index]),
                elapsed_seconds=elapsed / len(jobs),
                batched_with=len(jobs))
            if method in ("psd", "psd_tracked"):
                record["n_psd"] = job["n_psd"]
            if method == "simulation":
                record["num_samples"] = stimulus_spec.num_samples
            records.append(record)
    return records


def execute_scenario_payload_observed(payload: dict,
                                      trace: bool = True) -> dict:
    """Pool entry point when the driver has observability enabled.

    A pool worker is a fresh process with no observability session, so
    one is opened around the payload and its measurements are shipped
    home with the records: ``{"records", "spans", "metrics"}``.  Span
    timestamps are epoch-based (``time.time()``), so worker spans merge
    onto the driver's clock without translation.
    """
    with obs.observe(trace=trace) as session:
        records = execute_scenario_payload(payload)
    return {
        "records": records,
        "spans": session.trace.snapshot() if session.trace else [],
        "metrics": session.metrics.snapshot(),
    }


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
class _JsonlWriter:
    """Append-mode JSONL stream, flushed per record (crash-safe tail)."""

    def __init__(self, path: str | Path | None):
        self._stream = None
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = path.open("a")

    def write(self, record: dict) -> None:
        if self._stream is not None:
            import json
            self._stream.write(json.dumps(record) + "\n")
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


def run_campaign(spec: CampaignSpec,
                 cache: ResultCache | None = None,
                 cache_dir: str | Path | None = None,
                 output_path: str | Path | None = None,
                 workers: int = 1) -> CampaignResult:
    """Run a campaign: expand, serve from cache, execute the rest.

    Parameters
    ----------
    spec:
        The campaign description (scenarios x methods x wordlengths).
    cache:
        An existing :class:`ResultCache`; mutually exclusive with
        ``cache_dir``.
    cache_dir:
        Directory of the content-addressed result cache; ``None`` (and no
        ``cache``) disables caching.
    output_path:
        When given, every record (cached or computed) is appended to this
        JSONL file as soon as it is known.
    workers:
        Process-pool width for the per-scenario payloads; ``<= 1`` runs
        inline in this process (identical results).

    Returns
    -------
    CampaignResult
        All records plus hit / compute accounting.
    """
    if cache is not None and cache_dir is not None:
        raise ValueError("pass either cache or cache_dir, not both")
    if cache is None:
        cache = ResultCache(cache_dir)
    started = time.perf_counter()
    # Per-campaign accounting registry: always live (exact counts whether
    # or not observability is enabled), published into the process-wide
    # session — and summarised in the finish-line log — at the end.
    registry = obs.MetricsRegistry()
    hit_counter = registry.counter("campaign.cache.hits")
    miss_counter = registry.counter("campaign.cache.misses")
    skip_counter = registry.counter("campaign.jobs.skipped")
    trace_on = obs.tracing()
    prepared, _jobs, skipped = expand_campaign(spec)
    skip_counter.inc(skipped)
    writer = _JsonlWriter(output_path)
    try:
        with span("campaign.run", scenarios=len(prepared), workers=workers):
            records_by_key: dict[str, dict] = {}
            pending: list[tuple[PreparedScenario, list]] = []
            scheduled: set[str] = set()
            for scenario in prepared:
                misses = []
                for job in scenario.jobs:
                    if job.key in scheduled:
                        # Identical grid point from an overlapping scenario
                        # entry: served from the first computation.
                        hit_counter.inc()
                        if trace_on:
                            record_span("campaign.job", time.time(), 0.0,
                                        key=job.key, scenario=job.scenario,
                                        method=job.method, cached=True,
                                        dedup=True)
                        continue
                    lookup_ts = time.time()
                    lookup_t0 = time.perf_counter()
                    cached = cache.get(job.key)
                    if cached is not None:
                        cached = {**cached, "cached": True}
                        records_by_key[job.key] = cached
                        writer.write(cached)
                        hit_counter.inc()
                        if trace_on:
                            record_span(
                                "campaign.job", lookup_ts,
                                time.perf_counter() - lookup_t0,
                                key=job.key, scenario=job.scenario,
                                method=job.method, cached=True)
                    else:
                        scheduled.add(job.key)
                        misses.append(job)
                if misses:
                    pending.append((scenario, misses))

            def absorb(records: list[dict]) -> None:
                for record in records:
                    record = {**record, "cached": False}
                    cache.put(record["key"], record)
                    records_by_key[record["key"]] = record
                    writer.write(record)
                    miss_counter.inc()

            payloads = [_scenario_payload(scenario, jobs)
                        for scenario, jobs in pending]
            if workers > 1 and len(payloads) > 1:
                observed = obs.enabled()
                with ProcessPoolExecutor(
                        max_workers=min(workers, len(payloads))) as pool:
                    if observed:
                        # Workers open their own observability session and
                        # ship spans + metrics home with the records.
                        futures = [pool.submit(execute_scenario_payload_observed,
                                               payload, trace_on)
                                   for payload in payloads]
                        for future in as_completed(futures):
                            result = future.result()
                            obs.ingest_spans(result["spans"])
                            obs.publish_metrics(result["metrics"])
                            absorb(result["records"])
                    else:
                        futures = [pool.submit(execute_scenario_payload,
                                               payload)
                                   for payload in payloads]
                        for future in as_completed(futures):
                            absorb(future.result())
            else:
                for payload in payloads:
                    absorb(execute_scenario_payload(payload))
    finally:
        writer.close()

    # Deterministic record order (expansion order), whatever the
    # completion order of the pool was.  A grid point served by another
    # entry's identical job (same content, e.g. factor=2 vs factor=2.0)
    # is relabeled with its own scenario identity and marked cached —
    # it was served from the first computation, matching how it is
    # counted in ``cache_hits`` — so reports and the runner accounting
    # always agree.
    ordered = []
    first_occurrence: set[str] = set()
    for scenario in prepared:
        for job in scenario.jobs:
            record = records_by_key[job.key]
            if job.key in first_occurrence:
                record = {**record, "cached": True}
            else:
                first_occurrence.add(job.key)
            if record["signature"] != job.signature:
                record = {**record, "scenario": job.scenario,
                          "signature": job.signature,
                          "params": dict(job.params)}
            ordered.append(record)
    elapsed = time.perf_counter() - started
    registry.gauge("campaign.elapsed_seconds").set(elapsed)
    result = CampaignResult(
        records=ordered,
        cache_hits=hit_counter.value,
        computed=miss_counter.value,
        skipped_unsupported=skip_counter.value,
        elapsed_seconds=elapsed)
    obs.publish_metrics(registry.snapshot())
    logger.info(
        "campaign finished: %d jobs — %d cached (%.1f%% warm), %d computed, "
        "%d skipped unsupported, %.3f s wall",
        result.total_jobs, result.cache_hits, 100.0 * result.hit_rate,
        result.computed, result.skipped_unsupported, elapsed)
    return result
