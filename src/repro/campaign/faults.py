"""Fault-tolerance primitives for campaign execution.

Two concerns live here, deliberately side by side:

* :class:`RetryPolicy` — how the campaign supervisor reacts to a failing
  payload: how many attempts each dispatch gets, how long to back off
  between them (exponential, with *deterministic* jitter seeded from the
  campaign seed and the payload's content key, so two identical runs
  retry on identical schedules), and how long a payload may run before
  it is declared hung.
* :class:`FaultInjector` — a seeded chaos harness that, **only when
  explicitly armed** (constructed and passed to
  :func:`~repro.campaign.runner.run_campaign`), injects the failures a
  real deployment will see: payload exceptions, worker hard-crashes
  (``os._exit``), hangs, and corrupt cache-record writes.  Every
  decision is a pure function of ``(seed, job key)``, so a chaos run is
  reproducible from one seed and the driver can reconstruct the exact
  *ledger* of planned faults (:meth:`FaultInjector.ledger`) to reconcile
  against the runner's failure/retry accounting.

Fault semantics:

* ``exception`` faults may be *transient* (fire only the first time a
  job is dispatched — a retry recovers) or *permanent* (fire on every
  dispatch — the supervisor isolates the job by bisection and
  quarantines it as a ``status="failed"`` record).
* ``crash`` / ``hang`` faults are always transient: they model a worker
  dying or stalling, not a poisoned input, and firing them more than
  once per job would make a chaos campaign's wall time unbounded.
* ``corrupt`` faults never fail a job: they garble the job's cache
  record *after* it is written, exercising the cache's self-healing
  read path on the next run.
* Inline execution (``workers <= 1`` or the supervisor's degraded mode)
  converts ``crash`` and ``hang`` to plain exceptions — ``os._exit`` in
  the driver process would kill the campaign itself, and an inline hang
  has no supervising timeout to cut it short.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

#: Exit code a chaos-crashed worker dies with (recognizable in process
#: tables; anything nonzero breaks the pool the same way).
CRASH_EXIT_CODE = 97

#: Every fault kind the injector knows how to produce.
FAULT_KINDS = ("exception", "crash", "hang", "corrupt")


def _unit_interval(*parts: object) -> float:
    """Deterministic hash of ``parts`` mapped into ``[0, 1)``."""
    text = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class InjectedFault(RuntimeError):
    """A chaos fault raised inside a payload (picklable across pools)."""

    def __init__(self, key: str, kind: str = "exception",
                 permanent: bool = False):
        self.key = key
        self.kind = kind
        self.permanent = permanent
        super().__init__(
            f"injected {'permanent' if permanent else 'transient'} "
            f"{kind} fault on job {key[:12]}")

    def __reduce__(self):
        # The custom __init__ signature needs an explicit recipe so the
        # exception survives the pickle trip out of a pool worker.
        return (InjectedFault, (self.key, self.kind, self.permanent))


@dataclass(frozen=True)
class FaultPlan:
    """What the injector has decided for one job key."""

    kind: str
    permanent: bool = False


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision parameters of one campaign run.

    Attributes
    ----------
    max_attempts:
        Dispatches a payload gets before the supervisor escalates
        (bisection for multi-job payloads, quarantine for single jobs).
        ``1`` disables retries without disabling escalation.
    backoff_base / backoff_factor / backoff_max:
        Exponential backoff before re-dispatch ``n``:
        ``base * factor**(n-1)``, capped at ``backoff_max`` seconds.
        A non-positive base disables the sleep entirely.
    jitter:
        Fractional jitter spread on top of the backoff, drawn
        deterministically from ``(seed, payload key, attempt)`` — two
        identical runs back off on identical schedules.
    payload_timeout:
        Wall-clock seconds a pool payload may run before it is declared
        hung and its pool abandoned; ``None`` disables the watchdog.
        Inline execution has no enforcement point and ignores it.
    seed:
        Seed of the deterministic jitter stream.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    payload_timeout: float | None = None
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.payload_timeout is not None and self.payload_timeout <= 0:
            raise ValueError("payload_timeout must be positive (or None)")

    def delay(self, key: str, attempt: int) -> float:
        """Backoff (seconds) before re-dispatch number ``attempt``."""
        if self.backoff_base <= 0.0:
            return 0.0
        base = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        spread = self.jitter * _unit_interval(self.seed, key, attempt)
        return min(base * (1.0 + spread), self.backoff_max)


@dataclass(frozen=True)
class FaultInjector:
    """Seeded, content-keyed chaos injection (armed by construction).

    ``plan_for`` is a pure function of ``(seed, key)``: a job either
    carries a fault in every run of this seed or in none, whatever the
    worker count, dispatch order or retry history — which is what makes
    the ledger reconcilable and a chaos campaign reproducible.
    """

    seed: int = 0
    rate: float = 0.2
    kinds: tuple = FAULT_KINDS
    permanent_rate: float = 0.25
    hang_seconds: float = 60.0
    inline: bool = False

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be within [0, 1]")
        unknown = sorted(set(self.kinds) - set(FAULT_KINDS))
        if unknown or not self.kinds:
            raise ValueError(f"unknown fault kind(s) {unknown}; expected a "
                             f"non-empty subset of {FAULT_KINDS}")

    # ------------------------------------------------------------------
    # Arming syntax / cross-process transport
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultInjector":
        """Parse the CLI arming syntax ``SEED@RATE[@KIND,KIND,...]``."""
        parts = text.split("@")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad chaos spec {text!r}; expected SEED@RATE or "
                "SEED@RATE@KIND,KIND (e.g. 7@0.25@exception,crash)")
        try:
            seed, rate = int(parts[0]), float(parts[1])
        except ValueError:
            raise ValueError(f"bad chaos spec {text!r}; SEED must be an "
                             "integer and RATE a float") from None
        kinds = tuple(part for part in parts[2].split(",") if part) \
            if len(parts) == 3 else FAULT_KINDS
        return cls(seed=seed, rate=rate, kinds=kinds)

    def config(self, inline: bool = False) -> dict:
        """JSON-compatible form shipped to pool workers in the payload."""
        return {"seed": self.seed, "rate": self.rate,
                "kinds": list(self.kinds),
                "permanent_rate": self.permanent_rate,
                "hang_seconds": self.hang_seconds, "inline": bool(inline)}

    @classmethod
    def from_config(cls, data: dict) -> "FaultInjector":
        """Rebuild a worker-side injector from :meth:`config` output."""
        return cls(seed=int(data["seed"]), rate=float(data["rate"]),
                   kinds=tuple(data["kinds"]),
                   permanent_rate=float(data["permanent_rate"]),
                   hang_seconds=float(data["hang_seconds"]),
                   inline=bool(data.get("inline", False)))

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def plan_for(self, key: str) -> FaultPlan | None:
        """The fault planned for ``key`` under this seed, if any."""
        if _unit_interval(self.seed, "gate", key) >= self.rate:
            return None
        index = int(_unit_interval(self.seed, "kind", key) * len(self.kinds))
        kind = self.kinds[min(index, len(self.kinds) - 1)]
        permanent = (kind == "exception"
                     and _unit_interval(self.seed, "permanent", key)
                     < self.permanent_rate)
        return FaultPlan(kind, permanent)

    def ledger(self, keys) -> dict:
        """Planned faults for ``keys`` — the reconciliation ground truth."""
        plans = {}
        for key in keys:
            plan = self.plan_for(key)
            if plan is not None:
                plans[key] = plan
        return plans

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def fire(self, key: str, attempt: int) -> None:
        """Inject the fault planned for ``key``, if one is due now.

        Transient faults fire only on a job's first dispatch
        (``attempt == 0``); permanent faults fire on every dispatch.
        ``corrupt`` faults are driven by the cache writer, not here.
        """
        plan = self.plan_for(key)
        if plan is None or plan.kind == "corrupt":
            return
        if not plan.permanent and attempt > 0:
            return
        if plan.kind == "exception" or self.inline:
            raise InjectedFault(key, plan.kind, plan.permanent)
        if plan.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if plan.kind == "hang":
            time.sleep(self.hang_seconds)

    def corrupt_record(self, cache, key: str) -> bool:
        """Garble ``key``'s freshly written cache record, if planned.

        Models a write that never lands intact (torn sector, disk-full
        truncation): the in-memory record the run already absorbed stays
        good; only the *next* run sees the damage — and the cache's
        defensive read path heals it into a recomputed miss.
        """
        plan = self.plan_for(key)
        if plan is None or plan.kind != "corrupt" or not cache.enabled:
            return False
        path = cache.path_for(key)
        if not path.exists():
            return False
        path.write_text('{"key": "%s", "truncated' % key)
        return True
