"""Design-space exploration campaigns.

The paper's point is that PSD-based analytical evaluation makes
large-scale word-length exploration affordable; this subpackage is the
layer that actually runs such explorations at scale.  The data flow is

::

    registry  ->  jobs  ->  cache  ->  runner  ->  report
    (named        (scenario x    (content-     (process-pool  (Ed / noise /
     scenario      method x       addressed     batched        runtime tables,
     generators)   word-length    JSON store)   execution,     CSV / JSON)
                   grid)                        JSONL stream)

* :mod:`~repro.campaign.registry` — parameterized scenario generators
  registered by name; each builds a signal-flow graph plus a stimulus
  specification and default noise budgets, with a stable parameter
  signature.
* :mod:`~repro.campaign.jobs` — a campaign specification (scenarios x
  methods x word-length grid) expanded into content-addressed jobs.
* :mod:`~repro.campaign.cache` — the content-addressed disk cache that
  makes re-runs and overlapping campaigns incremental.
* :mod:`~repro.campaign.runner` — supervised, cache-aware execution,
  inline or on a :class:`~concurrent.futures.ProcessPoolExecutor`,
  streaming results to JSONL so interrupted campaigns resume from the
  cache; failing payloads are retried, bisected and quarantined instead
  of aborting the run.
* :mod:`~repro.campaign.faults` — the supervision knobs
  (:class:`~repro.campaign.faults.RetryPolicy`) and the seeded chaos
  harness (:class:`~repro.campaign.faults.FaultInjector`) that proves
  the fault handling deterministically.
* :mod:`~repro.campaign.report` — aggregation into per-scenario /
  per-method accuracy and runtime tables, CSV / JSON export.

Exposed on the command line as ``python -m repro.cli campaign``.
"""

from repro.campaign.cache import CacheStats, ResultCache
from repro.campaign.faults import (
    FaultInjector,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
)
from repro.campaign.jobs import (
    STATUS_FAILED,
    STATUS_OK,
    CampaignSpec,
    Job,
    PreparedScenario,
    ScenarioSpec,
    StimulusSpec,
    base_record,
    expand_campaign,
    failure_record,
    job_key,
)
from repro.campaign.registry import (
    ScenarioFamily,
    ScenarioInstance,
    build_scenario,
    get_family,
    register_scenario,
    scenario_names,
    scenario_signature,
)
from repro.campaign.report import CampaignReport
from repro.campaign.runner import CampaignResult, run_campaign

__all__ = [
    "ScenarioFamily",
    "ScenarioInstance",
    "register_scenario",
    "build_scenario",
    "get_family",
    "scenario_names",
    "scenario_signature",
    "StimulusSpec",
    "ScenarioSpec",
    "CampaignSpec",
    "Job",
    "PreparedScenario",
    "expand_campaign",
    "job_key",
    "base_record",
    "failure_record",
    "STATUS_OK",
    "STATUS_FAILED",
    "ResultCache",
    "CacheStats",
    "RetryPolicy",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "CampaignReport",
    "CampaignResult",
    "run_campaign",
]
