"""Content-addressed disk cache for campaign job results.

Each record is one JSON file named by its job key (two-level fan-out,
``<root>/<key[:2]>/<key>.json``), written atomically (temp file +
``os.replace``) so a killed campaign never leaves a half-written record.
Reads are defensive: an unreadable, undecodable or mis-keyed file is
treated as a miss, counted, removed so the slot heals on the next write,
and logged (with the offending path) so corruption discovered by fuzz or
campaign runs is diagnosable instead of silently recomputed.  This is
what makes campaigns resumable — a re-run simply finds most of its jobs
already on disk.

Accounting lives on a per-instance :class:`~repro.obs.MetricsRegistry`
(``campaign.cache.lookups{result=hit|miss|corrupt}`` and
``campaign.cache.puts``); the historical ``cache.stats`` surface is a
thin :class:`CacheStats` view over it, and the same counters are
mirrored into the process-wide observability session when one is
enabled.  Note these are *store-level* lookup counts: the runner's
``campaign.cache.hits`` / ``misses`` count *jobs* (overlap-deduplicated
grid points never reach the store), so the two families are deliberately
named apart.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.obs import MetricsRegistry, metric_inc

CACHE_SCHEMA_VERSION = 1

logger = logging.getLogger(__name__)


@dataclass
class CacheStats:
    """Hit / miss accounting of one cache instance (a registry view)."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    future_schema: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed JSON store keyed by campaign job keys.

    Parameters
    ----------
    root:
        Cache directory (created on first write).  ``None`` disables the
        cache: every lookup misses and writes are dropped — useful for
        one-shot runs and for timing cold paths.
    """

    def __init__(self, root: str | Path | None):
        self.root = Path(root) if root is not None else None
        self.metrics = MetricsRegistry()
        self._hits = self.metrics.counter("campaign.cache.lookups",
                                          result="hit")
        self._misses = self.metrics.counter("campaign.cache.lookups",
                                            result="miss")
        self._corrupt = self.metrics.counter("campaign.cache.lookups",
                                             result="corrupt")
        self._future = self.metrics.counter("campaign.cache.lookups",
                                            result="future_schema")
        self._puts = self.metrics.counter("campaign.cache.puts")

    @property
    def stats(self) -> CacheStats:
        """The historical accounting surface, read from the registry."""
        return CacheStats(hits=self._hits.value,
                          misses=self._misses.value,
                          corrupt=self._corrupt.value,
                          future_schema=self._future.value,
                          puts=self._puts.value)

    @property
    def enabled(self) -> bool:
        """Whether the cache is backed by a directory."""
        return self.root is not None

    def path_for(self, key: str) -> Path:
        """Location of a key's record (whether or not it exists)."""
        if self.root is None:
            raise ValueError("cache is disabled (no root directory)")
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Accounting plumbing
    # ------------------------------------------------------------------
    def _count_miss(self) -> None:
        self._misses.inc()
        metric_inc("campaign.cache.lookups", result="miss")

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """Return the cached record for ``key``, or ``None`` on a miss.

        Corrupt records — unparsable JSON, a non-dict payload, a record
        whose embedded key does not match its filename, or an unreadable
        file — are deleted, counted as misses and reported through a
        ``logging`` warning naming the offending path.

        Records written under a *newer* ``cache_schema`` than this
        binary understands are a logged miss but are **left on disk**:
        an old binary sharing a cache directory with a new one degrades
        to recomputing instead of misreading (or destroying) records it
        cannot interpret.
        """
        if self.root is None:
            self._count_miss()
            return None
        path = self.path_for(key)
        try:
            record = json.loads(path.read_text())
            if not isinstance(record, dict) or record.get("key") != key:
                raise ValueError("record/key mismatch")
            schema = record.get("cache_schema", CACHE_SCHEMA_VERSION)
            if not isinstance(schema, int) or isinstance(schema, bool):
                raise ValueError(f"non-integer cache_schema {schema!r}")
        except FileNotFoundError:
            self._count_miss()
            return None
        except (OSError, ValueError) as error:
            self._count_miss()
            self._corrupt.inc()
            metric_inc("campaign.cache.lookups", result="corrupt")
            logger.warning(
                "discarding corrupt campaign cache record %s (%s); the "
                "slot heals on the next write", path, error)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if schema > CACHE_SCHEMA_VERSION:
            self._count_miss()
            self._future.inc()
            metric_inc("campaign.cache.lookups", result="future_schema")
            logger.warning(
                "ignoring campaign cache record %s written under future "
                "cache_schema %d (this binary understands %d); left on "
                "disk for newer binaries", path, schema,
                CACHE_SCHEMA_VERSION)
            return None
        self._hits.inc()
        metric_inc("campaign.cache.lookups", result="hit")
        return record

    def put(self, key: str, record: dict) -> None:
        """Store a record atomically under ``key``.

        The record's ``key`` field is forced to match, and the write goes
        through a temp file in the same directory followed by
        ``os.replace`` so concurrent readers and killed writers never see
        partial JSON.
        """
        if self.root is None:
            return
        record = {**record, "key": key,
                  "cache_schema": CACHE_SCHEMA_VERSION}
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(dir=path.parent,
                                             suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(record, stream)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._puts.inc()
        metric_inc("campaign.cache.puts")
