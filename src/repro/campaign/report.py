"""Aggregation of campaign records into accuracy / runtime tables.

The runner emits flat per-job records; this module joins each analytical
estimate against the matching Monte-Carlo record (same scenario
signature, same wordlength, same seed), computes the paper's ``Ed``
deviation and renders the result as a text table, CSV or JSON.  The JSON
export also carries a machine-readable summary (job counts, cache hit
rate, per-method Ed statistics) consumed by the CI campaign smoke job.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.analysis.metrics import ed_deviation, is_sub_one_bit
from repro.campaign.jobs import STATUS_FAILED, STATUS_OK
from repro.utils.tables import TextTable

_ANALYTICAL = ("psd", "psd_tracked", "flat", "agnostic")

#: Columns of the flattened row/CSV form, in order.
ROW_FIELDS = ("scenario", "signature", "wordlength", "method", "power",
              "simulated_power", "ed_percent", "sub_one_bit", "cached",
              "elapsed_ms", "status")


def _join_key(record: dict) -> tuple:
    """Key matching an analytical record to its simulation reference.

    Includes the stimulus (canonical form) so that record sets mixing
    several stimulus configurations — e.g. a JSONL file accumulated
    across campaigns with different ``--samples`` — never join an
    estimate against a foreign simulation.
    """
    stimulus = record.get("stimulus")
    return (record["signature"], record["wordlength"],
            record.get("seed", 0),
            json.dumps(stimulus, sort_keys=True) if stimulus else None)


class CampaignReport:
    """Joined, render-ready view of a campaign's records."""

    def __init__(self, records: list):
        self.records = list(records)
        self._simulated: dict[tuple, dict] = {
            _join_key(r): r
            for r in self.records
            if r["method"] == "simulation" and "power" in r}
        self._rows: list | None = None

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "CampaignReport":
        """Load a report from the runner's JSONL stream.

        Later records win over earlier ones with the same key, so a file
        appended to by an interrupted run plus its resume reads cleanly.
        """
        by_key: dict[str, dict] = {}
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if line:
                record = json.loads(line)
                by_key[record["key"]] = record
        return cls(list(by_key.values()))

    # ------------------------------------------------------------------
    # Joined rows
    # ------------------------------------------------------------------
    def _simulation_for(self, record: dict) -> dict | None:
        return self._simulated.get(_join_key(record))

    def rows(self) -> list[dict]:
        """One flattened row per record (see :data:`ROW_FIELDS`).

        Analytical rows carry ``Ed`` against the matching simulation
        record when the campaign included one.  The join runs once;
        describe / summary / export all reuse it.
        """
        if self._rows is not None:
            return list(self._rows)
        rows = []
        for record in self.records:
            failed = record.get("status") == STATUS_FAILED
            row = {
                "scenario": record["scenario"],
                "signature": record["signature"],
                "wordlength": record["wordlength"],
                "method": record["method"],
                "power": record.get("power"),
                "simulated_power": None,
                "ed_percent": None,
                "sub_one_bit": None,
                "cached": bool(record.get("cached", False)),
                "elapsed_ms": 1000.0 * record.get("elapsed_seconds", 0.0),
                "status": STATUS_FAILED if failed else STATUS_OK,
            }
            if not failed and record["method"] in _ANALYTICAL:
                simulated = self._simulation_for(record)
                if simulated is not None and simulated["power"] > 0:
                    ed = ed_deviation(simulated["power"], record["power"])
                    row["simulated_power"] = simulated["power"]
                    row["ed_percent"] = 100.0 * ed
                    row["sub_one_bit"] = is_sub_one_bit(ed)
            rows.append(row)
        self._rows = rows
        return list(rows)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Machine-readable roll-up (used by the CI smoke assertions)."""
        rows = self.rows()
        cached = sum(1 for row in rows if row["cached"])
        failed = sum(1 for row in rows if row["status"] == STATUS_FAILED)
        failures = [
            {"key": record["key"], "scenario": record["scenario"],
             "method": record["method"],
             "wordlength": record["wordlength"],
             "error_type": record.get("error_type"),
             "error_message": record.get("error_message"),
             "attempts": record.get("attempts")}
            for record in self.records
            if record.get("status") == STATUS_FAILED]
        methods: dict[str, dict] = {}
        for method in sorted({row["method"] for row in rows}):
            method_rows = [row for row in rows if row["method"] == method]
            entry = {
                "jobs": len(method_rows),
                "total_elapsed_ms": float(sum(r["elapsed_ms"]
                                              for r in method_rows)),
            }
            eds = [row["ed_percent"] for row in method_rows
                   if row["ed_percent"] is not None]
            if eds:
                entry["ed_mean_abs_percent"] = float(np.mean(np.abs(eds)))
                entry["ed_max_abs_percent"] = float(np.max(np.abs(eds)))
                entry["all_sub_one_bit"] = all(
                    row["sub_one_bit"] for row in method_rows
                    if row["sub_one_bit"] is not None)
            methods[method] = entry
        return {
            "jobs": len(rows),
            "cached": cached,
            "computed": len(rows) - cached - failed,
            "failed": failed,
            "failures": failures,
            "hit_rate": cached / len(rows) if rows else 0.0,
            "scenarios": sorted({row["scenario"] for row in rows}),
            "wordlengths": sorted({row["wordlength"] for row in rows}),
            "methods": methods,
        }

    def describe(self) -> str:
        """Render the joined rows as the text table printed by the CLI."""
        summary = self.summary()
        table = TextTable(
            ["scenario", "W", "method", "est. power", "sim. power",
             "Ed [%]", "sub-1-bit?", "cached?", "ms"],
            title=(f"campaign: {summary['jobs']} jobs over "
                   f"{len(summary['scenarios'])} scenario(s), "
                   f"{summary['cached']} served from cache"
                   + (f", {summary['failed']} FAILED"
                      if summary["failed"] else "")))
        for row in self.rows():
            table.add_row(
                row["scenario"], row["wordlength"], row["method"],
                "FAILED" if row["status"] == STATUS_FAILED
                else f"{row['power']:.3e}",
                "-" if row["simulated_power"] is None
                else f"{row['simulated_power']:.3e}",
                "-" if row["ed_percent"] is None
                else round(row["ed_percent"], 2),
                "-" if row["sub_one_bit"] is None
                else ("yes" if row["sub_one_bit"] else "NO"),
                "yes" if row["cached"] else "no",
                round(row["elapsed_ms"], 3))
        return table.render()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv(self, path: str | Path) -> None:
        """Write the joined rows as CSV."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as stream:
            writer = csv.DictWriter(stream, fieldnames=ROW_FIELDS)
            writer.writeheader()
            writer.writerows(self.rows())

    def to_json(self, path: str | Path) -> None:
        """Write summary + joined rows + raw records as one JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"summary": self.summary(), "rows": self.rows(),
                   "records": self.records}
        path.write_text(json.dumps(payload, indent=2) + "\n")
