"""Campaign specifications and their expansion into content-addressed jobs.

A campaign is a grid — scenarios x evaluation methods x uniform
word-lengths — and each grid point is one *job*.  A job is keyed by a
canonical SHA-256 over everything its result depends on: the serialized
graph (via :func:`~repro.sfg.serialization.graph_fingerprint`), the
word-length assignment, the method, the PSD resolution, the stimulus
specification and the seed.  Identical work therefore hashes identically
across runs, processes and machines, which is what lets the cache layer
(:mod:`repro.campaign.cache`) serve re-runs and overlapping campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.data.signals import SignalGenerator
from repro.sfg.graph import SignalFlowGraph, is_multirate  # noqa: F401
from repro.sfg.serialization import (
    assignment_fingerprint,
    canonical_digest,
    canonical_graph_dict,
    fingerprint_of_canonical_dict,
    graph_fingerprint,
)

JOB_SCHEMA_VERSION = 1

#: Methods a job may carry: the four analytical engines plus the
#: Monte-Carlo reference (recorded like any other method so reports can
#: join estimates against it).
JOB_METHODS = ("psd", "psd_tracked", "flat", "agnostic", "simulation")

#: Methods restricted to single-rate graphs (their propagation rules are
#: undefined under decimation / expansion).
SINGLE_RATE_METHODS = frozenset({"psd_tracked", "flat"})

#: Methods whose result depends on the PSD resolution; only these key on
#: ``n_psd``, so retuning it never invalidates the (expensive) cached
#: simulation records or the moment-only estimates.
PSD_METHODS = frozenset({"psd", "psd_tracked"})

#: Record status values.  Records without a ``status`` field are
#: successful — the pre-fault-tolerance record shape is unchanged, so
#: existing caches and JSONL streams keep their exact bytes.
STATUS_OK = "ok"
STATUS_FAILED = "failed"


@dataclass(frozen=True)
class StimulusSpec:
    """Deterministic description of the simulation stimulus.

    Attributes
    ----------
    kind:
        Stimulus family (see
        :class:`~repro.data.signals.SignalGenerator`).
    num_samples:
        Samples per input.
    amplitude:
        Peak amplitude.
    discard_transient:
        Leading output samples dropped before measuring (start-up
        transient of the filters).
    """

    kind: str = "white"
    num_samples: int = 20_000
    amplitude: float = 0.9
    discard_transient: int = 0

    def canonical(self) -> dict:
        """JSON-compatible canonical form (part of the job key)."""
        return {"kind": self.kind, "num_samples": int(self.num_samples),
                "amplitude": float(self.amplitude),
                "discard_transient": int(self.discard_transient)}

    def realize(self, input_names, seed: int) -> dict[str, np.ndarray]:
        """Generate the per-input sample vectors for one seed.

        The generator is re-seeded from ``seed`` alone and inputs are
        filled in name order, so the same ``(spec, input names, seed)``
        triple always yields the same stimulus — in any process.
        """
        generator = SignalGenerator(seed=seed)
        return {name: generator.generate(self.kind, self.num_samples,
                                         self.amplitude)
                for name in sorted(input_names)}

    @classmethod
    def from_dict(cls, data: dict) -> "StimulusSpec":
        """Rebuild a spec from :meth:`canonical` output."""
        return cls(kind=data.get("kind", "white"),
                   num_samples=int(data.get("num_samples", 20_000)),
                   amplitude=float(data.get("amplitude", 0.9)),
                   discard_transient=int(data.get("discard_transient", 0)))


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario entry of a campaign: family name plus overrides."""

    name: str
    params: dict = field(default_factory=dict, hash=False)


@dataclass(frozen=True)
class CampaignSpec:
    """The full description of a campaign.

    Attributes
    ----------
    scenarios:
        Scenario entries (family name + parameter overrides).
    methods:
        Evaluation methods to run per scenario (see :data:`JOB_METHODS`).
        Include ``"simulation"`` to attach the Monte-Carlo reference —
        reports then compute ``Ed`` per analytical method.
    wordlengths:
        Uniform fractional word lengths swept per scenario; each value is
        applied to every quantized node of the scenario graph.
    n_psd:
        PSD resolution of the PSD-based methods.
    stimulus:
        Full stimulus override; ``None`` uses each scenario's own
        default (kind, length, transient).
    samples:
        Length-only override: keeps each scenario's stimulus kind,
        amplitude and transient handling and changes just
        ``num_samples``.  Ignored when ``stimulus`` is given.
    seed:
        Base seed for every generated stimulus.
    """

    scenarios: tuple
    methods: tuple = ("psd", "simulation")
    wordlengths: tuple = (8, 12, 16)
    n_psd: int = 256
    stimulus: StimulusSpec | None = None
    samples: int | None = None
    seed: int = 0


@dataclass(frozen=True)
class Job:
    """One unit of campaign work, content-addressed by :attr:`key`."""

    key: str
    scenario: str
    signature: str
    params: dict = field(hash=False)
    method: str = "psd"
    wordlength: int = 12
    assignment: dict = field(default_factory=dict, hash=False)
    n_psd: int = 256
    stimulus: StimulusSpec = StimulusSpec()
    seed: int = 0


@dataclass
class PreparedScenario:
    """A built scenario instance plus everything the runner ships to a
    worker: the serialized graph, the uniform-wordlength assignments and
    the jobs grouped under this scenario."""

    spec: ScenarioSpec
    signature: str
    graph_dict: dict
    stimulus: StimulusSpec
    quantized_nodes: tuple
    jobs: list = field(default_factory=list)


def _job_key_from_fingerprints(graph_digest: str, assignment_digest: str,
                               method: str, n_psd: int,
                               stimulus: StimulusSpec, seed: int) -> str:
    return canonical_digest({
        "kind": "campaign-job",
        "schema": JOB_SCHEMA_VERSION,
        "graph": graph_digest,
        "assignment": assignment_digest,
        "method": method,
        "n_psd": int(n_psd) if method in PSD_METHODS else None,
        "stimulus": stimulus.canonical(),
        "seed": int(seed),
    })


def job_key(graph: SignalFlowGraph, assignment: dict, method: str,
            n_psd: int, stimulus: StimulusSpec, seed: int) -> str:
    """Canonical content hash of one job.

    Everything the result depends on enters the digest — and only that:
    ``n_psd`` is keyed for the PSD-based methods alone, so retuning the
    PSD resolution never invalidates cached simulation or moment-only
    records.  Analytical methods do not consume the stimulus, but keying
    them on it anyway keeps one uniform key shape and re-validates
    estimates whenever the simulation conditions of a campaign change.
    """
    return _job_key_from_fingerprints(
        graph_fingerprint(graph), assignment_fingerprint(assignment),
        method, n_psd, stimulus, seed)


def base_record(payload: dict, job: dict) -> dict:
    """The identity fields every campaign record starts from.

    ``payload`` is the runner's scenario work order (scenario name,
    signature, params, stimulus, seed) and ``job`` one of its job dicts;
    both successful and failure records share this prefix so reports and
    resume streams join them uniformly.
    """
    return {
        "key": job["key"],
        "scenario": payload["scenario"],
        "signature": payload["signature"],
        "params": payload["params"],
        "method": job["method"],
        "wordlength": job["wordlength"],
        "seed": payload["seed"],
        # Part of the report's estimate-vs-simulation join key: records
        # produced under different stimuli must never be joined.
        "stimulus": payload["stimulus"],
    }


def failure_record(payload: dict, job: dict, error: BaseException,
                   attempts: int) -> dict:
    """A quarantined job's structured ``status="failed"`` record.

    Failure records flow to the JSONL stream and the report exactly like
    results, but are **never** stored in the result cache — there is no
    negative caching, so a re-run retries the job from scratch.
    """
    record = base_record(payload, job)
    record.update(
        status=STATUS_FAILED,
        error_type=type(error).__name__,
        error_message=str(error),
        attempts=int(attempts),
        cached=False)
    return record


def quantized_node_names(graph: SignalFlowGraph) -> tuple:
    """Names of the nodes carrying an enabled quantization spec — the
    nodes a uniform word-length assignment re-targets."""
    return tuple(name for name, node in graph.nodes.items()
                 if node.quantization.enabled)


def expand_campaign(spec: CampaignSpec):
    """Expand a campaign into prepared scenarios and their jobs.

    Builds every scenario once (through the registry), serializes the
    graphs, and emits one :class:`Job` per
    ``scenario x method x wordlength`` grid point.  Methods that are
    undefined for a scenario's rate structure (``psd_tracked`` / ``flat``
    on multirate graphs) are skipped for that scenario; the skip count is
    returned so callers can surface it instead of silently shrinking the
    grid.

    Returns
    -------
    (prepared, jobs, skipped):
        ``prepared`` — one :class:`PreparedScenario` per campaign entry,
        each holding its own jobs; ``jobs`` — the flat job list;
        ``skipped`` — number of grid points dropped as unsupported.
    """
    from repro.campaign.registry import build_scenario

    unknown = sorted(set(spec.methods) - set(JOB_METHODS))
    if unknown:
        raise ValueError(f"unknown method(s) {unknown}; expected a subset "
                         f"of {JOB_METHODS}")
    if not spec.wordlengths:
        raise ValueError("campaign needs at least one wordlength")
    prepared: list[PreparedScenario] = []
    jobs: list[Job] = []
    skipped = 0
    for entry in spec.scenarios:
        instance = build_scenario(entry.name, entry.params)
        graph = instance.graph
        if spec.stimulus is not None:
            stimulus = spec.stimulus
        elif spec.samples is not None:
            stimulus = replace(instance.stimulus,
                               num_samples=int(spec.samples))
        else:
            stimulus = instance.stimulus
        multirate = is_multirate(graph)
        scenario = PreparedScenario(
            spec=entry,
            signature=instance.signature,
            graph_dict=canonical_graph_dict(graph),
            stimulus=stimulus,
            quantized_nodes=quantized_node_names(graph))
        # The expensive digests depend only on the scenario (graph) and
        # the wordlength (assignment), not on the method — hoist them out
        # of the grid loops; the graph digest reuses the canonical dict
        # already built for the worker payload.
        graph_digest = fingerprint_of_canonical_dict(scenario.graph_dict)
        assignments = {
            wordlength: {name: int(wordlength)
                         for name in scenario.quantized_nodes}
            for wordlength in spec.wordlengths}
        assignment_digests = {
            wordlength: assignment_fingerprint(assignment)
            for wordlength, assignment in assignments.items()}
        for method in spec.methods:
            if multirate and method in SINGLE_RATE_METHODS:
                skipped += len(spec.wordlengths)
                continue
            for wordlength in spec.wordlengths:
                assignment = assignments[wordlength]
                job = Job(
                    key=_job_key_from_fingerprints(
                        graph_digest, assignment_digests[wordlength],
                        method, spec.n_psd, stimulus, spec.seed),
                    scenario=entry.name,
                    signature=instance.signature,
                    params=dict(instance.params),
                    method=method,
                    wordlength=int(wordlength),
                    assignment=assignment,
                    n_psd=spec.n_psd,
                    stimulus=stimulus,
                    seed=spec.seed)
                scenario.jobs.append(job)
                jobs.append(job)
        prepared.append(scenario)
    return prepared, jobs, skipped
