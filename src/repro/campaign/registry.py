"""Scenario registry: named, parameterized system-family generators.

A *scenario* is a named recipe for one system under exploration: given a
parameter set it builds the signal-flow graph, the stimulus specification
used by simulation-based jobs and a list of default noise budgets for
word-length searches.  Scenarios are registered by name so campaigns can
be described as data (``{"scenario": "polyphase_decimator",
"params": {"factor": 8}}``) and so every family gets a *stable parameter
signature* — the canonical hash that content-addresses its jobs in the
campaign cache.

The built-in families cover the paper's two benchmarks (Table-I filters,
the 9/7 DWT bank) plus the four families of
:mod:`repro.systems.families`.  Registering a new family is one decorated
function::

    @register_scenario("my_family", description="...", taps=32)
    def _build_my_family(params):
        graph = ...
        return graph, StimulusSpec(num_samples=20_000), (1e-4, 1e-6)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.jobs import StimulusSpec
from repro.fixedpoint.quantizer import RoundingMode
from repro.sfg.serialization import canonical_digest
from repro.lti.fir_design import (
    design_fir_bandpass,
    design_fir_highpass,
    design_fir_lowpass,
)
from repro.sfg.builder import SfgBuilder
from repro.sfg.graph import SignalFlowGraph
from repro.systems.families import (
    build_cascaded_sos_bank,
    build_dwt97_bank,
    build_fft_butterfly,
    build_interpolator_chain,
    build_polyphase_decimator,
    build_scalability_bank,
)
from repro.systems.filter_bank import build_filter_graph, generate_iir_bank
from repro.systems.random_graphs import build_random_graph


def scenario_signature(name: str, params: dict) -> str:
    """Stable short signature of ``(scenario name, parameters)``.

    Canonical JSON (sorted keys) hashed with SHA-256; independent of the
    dict insertion order and of the process.  Used to group jobs by
    scenario and to label cache records and reports.
    """
    return canonical_digest(
        {"scenario": name,
         "params": {str(k): params[k] for k in sorted(params)}})[:16]


@dataclass(frozen=True)
class ScenarioInstance:
    """One concrete system produced by a scenario family.

    Attributes
    ----------
    name:
        Family name the instance was built from.
    params:
        The fully-resolved parameter set (defaults merged with overrides).
    graph:
        The built signal-flow graph.
    stimulus:
        Stimulus specification for simulation-based evaluation.
    default_budgets:
        Suggested noise-power budgets for word-length searches, loosest
        first.
    """

    name: str
    params: dict = field(hash=False)
    graph: SignalFlowGraph = field(hash=False)
    stimulus: StimulusSpec
    default_budgets: tuple

    @property
    def signature(self) -> str:
        """Stable parameter signature (see :func:`scenario_signature`)."""
        return scenario_signature(self.name, self.params)


class ScenarioFamily:
    """A registered, parameterized scenario generator."""

    def __init__(self, name: str, builder, description: str,
                 defaults: dict):
        self.name = name
        self.builder = builder
        self.description = description
        self.defaults = dict(defaults)

    def build(self, params: dict | None = None) -> ScenarioInstance:
        """Build one instance with ``params`` overriding the defaults."""
        overrides = dict(params or {})
        unknown = sorted(set(overrides) - set(self.defaults))
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} has no parameter(s) {unknown}; "
                f"known parameters: {sorted(self.defaults)}")
        resolved = {**self.defaults, **overrides}
        graph, stimulus, budgets = self.builder(resolved)
        return ScenarioInstance(name=self.name, params=resolved, graph=graph,
                                stimulus=stimulus,
                                default_budgets=tuple(budgets))


_REGISTRY: dict[str, ScenarioFamily] = {}


def register_scenario(name: str, description: str = "", **defaults):
    """Decorator registering ``builder(params) -> (graph, stimulus,
    budgets)`` as the scenario family ``name``.

    ``defaults`` declares the family's parameters and their default
    values; build-time overrides are validated against it.
    """
    def decorate(builder):
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = ScenarioFamily(name, builder, description, defaults)
        return builder
    return decorate


def get_family(name: str) -> ScenarioFamily:
    """Look up a registered family by name."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{scenario_names()}")
    return _REGISTRY[name]


def scenario_names() -> list[str]:
    """Sorted names of all registered scenario families."""
    return sorted(_REGISTRY)


def build_scenario(name: str, params: dict | None = None) -> ScenarioInstance:
    """Build one instance of the named family."""
    return get_family(name).build(params)


# ----------------------------------------------------------------------
# Built-in families
# ----------------------------------------------------------------------
@register_scenario(
    "cascaded_sos_bank",
    description="bank of band-pass channels, each a cascade of quantized "
                "biquad sections",
    channels=3, order=2, fractional_bits=12, family="butterworth")
def _scenario_cascaded_sos_bank(params):
    graph = build_cascaded_sos_bank(
        channels=int(params["channels"]), order=int(params["order"]),
        fractional_bits=int(params["fractional_bits"]),
        family=params["family"])
    return graph, StimulusSpec(num_samples=20_000, discard_transient=400), \
        (1e-4, 1e-6, 1e-8)


@register_scenario(
    "polyphase_decimator",
    description="M-branch polyphase FIR decimator (delay / decimate / "
                "sub-filter / sum)",
    taps=32, factor=4, fractional_bits=12)
def _scenario_polyphase_decimator(params):
    graph = build_polyphase_decimator(
        taps=int(params["taps"]), factor=int(params["factor"]),
        fractional_bits=int(params["fractional_bits"]))
    return graph, StimulusSpec(num_samples=24_000, discard_transient=64), \
        (1e-5, 1e-7, 1e-9)


@register_scenario(
    "interpolator_chain",
    description="chain of upsample-by-2 + half-band FIR interpolation "
                "stages",
    stages=2, taps=19, fractional_bits=12)
def _scenario_interpolator_chain(params):
    graph = build_interpolator_chain(
        stages=int(params["stages"]), taps=int(params["taps"]),
        fractional_bits=int(params["fractional_bits"]))
    return graph, StimulusSpec(num_samples=8_000, discard_transient=256), \
        (1e-5, 1e-7, 1e-9)


@register_scenario(
    "fft_butterfly",
    description="radix-2 DIT butterfly network of one DFT bin along the "
                "sample stream",
    stages=3, bin_index=1, fractional_bits=12)
def _scenario_fft_butterfly(params):
    graph = build_fft_butterfly(
        stages=int(params["stages"]), bin_index=int(params["bin_index"]),
        fractional_bits=int(params["fractional_bits"]))
    return graph, StimulusSpec(num_samples=32_000, discard_transient=32), \
        (1e-5, 1e-7, 1e-9)


@register_scenario(
    "table1_fir",
    description="one Table-I FIR system (quantized input, FIR block, "
                "quantized output)",
    taps=32, cutoff=0.35, kind="lowpass", fractional_bits=12)
def _scenario_table1_fir(params):
    taps, cutoff = int(params["taps"]), float(params["cutoff"])
    kind = params["kind"]
    if kind == "lowpass":
        coefficients = design_fir_lowpass(taps, cutoff)
    elif kind == "highpass":
        coefficients = design_fir_highpass(taps, cutoff)
    elif kind == "bandpass":
        coefficients = design_fir_bandpass(taps, max(0.05, cutoff - 0.15),
                                           min(0.95, cutoff + 0.15))
    else:
        raise ValueError(f"unknown FIR kind {kind!r}")
    builder = SfgBuilder(f"table1-fir-{kind}-{taps}taps")
    bits = int(params["fractional_bits"])
    x = builder.input("x", fractional_bits=bits)
    node = builder.fir("filter", list(coefficients), x, fractional_bits=bits)
    builder.output("y", node)
    graph = builder.build()
    return graph, StimulusSpec(num_samples=20_000,
                               discard_transient=4 * taps), \
        (1e-4, 1e-6, 1e-8)


@register_scenario(
    "table1_iir",
    description="one Table-I IIR system drawn from the paper's bank "
                "(index selects the design)",
    index=0, fractional_bits=12)
def _scenario_table1_iir(params):
    index = int(params["index"])
    entry = generate_iir_bank(index + 1)[index]
    graph = build_filter_graph(entry, int(params["fractional_bits"]),
                               RoundingMode.ROUND)
    return graph, StimulusSpec(num_samples=20_000,
                               discard_transient=4 * entry.order + 64), \
        (1e-4, 1e-6, 1e-8)


@register_scenario(
    "random",
    description="seeded random signal-flow graph (the fuzzing generator; "
                "seed selects the topology)",
    seed=0, blocks=8, multirate=1)
def _scenario_random(params):
    # Factor-2 segments only: campaign n_psd values are powers of two and
    # the PSD folding requires divisibility by every decimation factor.
    graph = build_random_graph(
        int(params["seed"]), blocks=int(params["blocks"]),
        multirate=bool(int(params["multirate"])), factors=(2,))
    return graph, StimulusSpec(num_samples=18_000, discard_transient=384), \
        (1e-4, 1e-6, 1e-8)


@register_scenario(
    "scalability_bank",
    description="wide bank of quantized FIR branches under an unquantized "
                "adder tree (the dirty-cone and fine-grained-search "
                "ablation workload)",
    branches=16, taps=17, fractional_bits=14)
def _scenario_scalability_bank(params):
    graph = build_scalability_bank(
        branches=int(params["branches"]), taps=int(params["taps"]),
        fractional_bits=int(params["fractional_bits"]))
    # Keep only the per-branch noise sources: a quantized input would be
    # one source reconverging through every branch, and the PQN adder
    # sum (uncorrelated inputs) underestimates that correlated pile-up.
    # One independent source per FIR branch is exactly the PQN domain,
    # and the shape the dirty-cone ablation times.
    node = graph.node("x")
    node.quantization = node.quantization.with_fractional_bits(None)
    return graph, StimulusSpec(num_samples=16_000, discard_transient=128), \
        (1e-4, 1e-6, 1e-8)


@register_scenario(
    "dwt97_bank",
    description="one-level Daubechies 9/7 analysis + synthesis bank "
                "(multirate)",
    fractional_bits=11)
def _scenario_dwt97_bank(params):
    graph = build_dwt97_bank(
        fractional_bits=int(params["fractional_bits"]))
    return graph, StimulusSpec(num_samples=16_000, discard_transient=64), \
        (1e-4, 1e-6, 1e-8)
