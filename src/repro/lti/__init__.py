"""Linear time-invariant (LTI) signal-processing substrate.

This subpackage contains every DSP building block required by the paper's
benchmark systems:

* :mod:`~repro.lti.windows` — window functions for FIR design.
* :mod:`~repro.lti.fir_design` — windowed-sinc FIR design (low-pass,
  high-pass, band-pass, band-stop).
* :mod:`~repro.lti.iir_design` — Butterworth / Chebyshev-I IIR design via
  analog prototypes and the bilinear transform, implemented from scratch.
* :mod:`~repro.lti.transfer_function` — rational transfer functions with
  impulse / frequency responses, stability checks and composition.
* :mod:`~repro.lti.filters` — stateful FIR / IIR filter implementations in
  double precision and fixed point.
* :mod:`~repro.lti.multirate` — decimation and expansion operators.
* :mod:`~repro.lti.convolution` — direct, overlap-save and overlap-add
  convolution.
* :mod:`~repro.lti.fft` — radix-2 FFT in double precision and fixed point.
"""

from repro.lti.transfer_function import TransferFunction
from repro.lti.filters import FirFilter, IirFilter
from repro.lti.fir_design import (
    design_fir_bandpass,
    design_fir_bandstop,
    design_fir_highpass,
    design_fir_lowpass,
)
from repro.lti.iir_design import design_iir_filter
from repro.lti.windows import get_window
from repro.lti.multirate import downsample, upsample
from repro.lti.convolution import convolve, overlap_add, overlap_save
from repro.lti.fft import fft_radix2, ifft_radix2
from repro.lti.sos import build_sos_graph, sos_to_tf, tf_to_sos

__all__ = [
    "tf_to_sos",
    "sos_to_tf",
    "build_sos_graph",
    "TransferFunction",
    "FirFilter",
    "IirFilter",
    "design_fir_lowpass",
    "design_fir_highpass",
    "design_fir_bandpass",
    "design_fir_bandstop",
    "design_iir_filter",
    "get_window",
    "downsample",
    "upsample",
    "convolve",
    "overlap_save",
    "overlap_add",
    "fft_radix2",
    "ifft_radix2",
]
