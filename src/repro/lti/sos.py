"""Second-order-section (cascade) realization of IIR filters.

Reference [10] of the paper (Jackson, 1970) is the classical roundoff-noise
analysis of fixed-point digital filters realized *in cascade or parallel
form*: factoring a high-order recursive filter into biquads changes where
quantization noise is injected and how strongly each injection is amplified
by the remaining sections, usually improving the noise behaviour
dramatically compared to a monolithic direct form.

This module provides the structural substrate for that study:

* :func:`tf_to_sos` — factor ``(b, a)`` into second-order sections
  (conjugate poles paired together, paired with the nearest zeros,
  ordered by pole radius);
* :func:`sos_to_tf` — recombine sections into a single transfer function;
* :func:`build_sos_graph` — expand a cascade into a signal-flow graph of
  biquad :class:`~repro.sfg.nodes.IirNode` blocks so that every accuracy
  evaluator of :mod:`repro.analysis` applies unchanged;
* the direct-form versus cascade comparison itself lives in
  ``benchmarks/test_ablation_sos_cascade.py``.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.quantizer import RoundingMode
from repro.lti.transfer_function import TransferFunction

# NOTE: the graph-building helpers import repro.sfg lazily inside the
# functions; repro.lti sits below repro.sfg in the layering and a
# module-level import would be circular.


def _pair_conjugates(roots: np.ndarray) -> list[np.ndarray]:
    """Group roots into pairs (conjugates together), padding with zeros."""
    roots = np.asarray(roots, dtype=complex)
    remaining = list(roots)
    pairs: list[np.ndarray] = []
    # Complex roots first, paired with their conjugates.
    complex_roots = [r for r in remaining if abs(r.imag) > 1e-10]
    real_roots = [r for r in remaining if abs(r.imag) <= 1e-10]
    used = np.zeros(len(complex_roots), dtype=bool)
    for index, root in enumerate(complex_roots):
        if used[index]:
            continue
        used[index] = True
        conjugate_index = None
        for other in range(index + 1, len(complex_roots)):
            if not used[other] and abs(complex_roots[other] - np.conj(root)) < 1e-8:
                conjugate_index = other
                break
        if conjugate_index is None:
            raise ValueError("complex roots must come in conjugate pairs")
        used[conjugate_index] = True
        pairs.append(np.array([root, np.conj(root)]))
    # Real roots paired by magnitude (largest together).
    real_roots.sort(key=lambda r: abs(r), reverse=True)
    while len(real_roots) >= 2:
        pairs.append(np.array([real_roots.pop(0), real_roots.pop(0)]))
    if real_roots:
        pairs.append(np.array([real_roots.pop(0), 0.0]))
    return pairs


def tf_to_sos(b, a) -> np.ndarray:
    """Factor a transfer function into second-order sections.

    Returns an array of shape ``(n_sections, 6)`` with rows
    ``[b0, b1, b2, 1, a1, a2]`` whose cascade equals ``B(z)/A(z)``.  The
    overall gain is folded into the first section.  Sections are ordered
    by increasing pole radius (the standard low-noise ordering heuristic).
    """
    tf = TransferFunction(b, a)
    poles = tf.poles()
    zeros = tf.zeros()

    pole_pairs = _pair_conjugates(poles) if len(poles) else []
    zero_pairs = _pair_conjugates(zeros) if len(zeros) else []

    n_sections = max(len(pole_pairs), len(zero_pairs), 1)
    while len(pole_pairs) < n_sections:
        pole_pairs.append(np.array([0.0, 0.0]))
    while len(zero_pairs) < n_sections:
        zero_pairs.append(np.array([0.0, 0.0]))

    # Order pole pairs by radius and match each with the closest zero pair.
    pole_pairs.sort(key=lambda pair: float(np.max(np.abs(pair))))
    matched_zero_pairs: list[np.ndarray] = []
    available = list(zero_pairs)
    for pair in pole_pairs:
        if not available:
            matched_zero_pairs.append(np.array([0.0, 0.0]))
            continue
        distances = [float(np.abs(z[0] - pair[0])) for z in available]
        best = int(np.argmin(distances))
        matched_zero_pairs.append(available.pop(best))

    gain = tf.b[0] if tf.b[0] != 0 else 1.0
    # Recover the true overall gain from the leading coefficients.
    gain = tf.b[np.argmax(np.abs(tf.b) > 0)] if np.any(tf.b != 0) else 1.0

    sections = np.zeros((n_sections, 6))
    for index, (zero_pair, pole_pair) in enumerate(
            zip(matched_zero_pairs, pole_pairs)):
        numerator = np.real(np.poly(zero_pair))
        denominator = np.real(np.poly(pole_pair))
        section_gain = gain if index == 0 else 1.0
        sections[index, :3] = section_gain * numerator
        sections[index, 3:] = denominator

    # Exact overall-gain correction: match the DC (or Nyquist) response.
    cascade = sos_to_tf(sections)
    reference = tf.frequency_response(8)
    realized = cascade.frequency_response(8)
    mask = np.abs(realized) > 1e-9
    if np.any(mask):
        correction = np.real(reference[mask][0] / realized[mask][0])
        if np.isfinite(correction) and correction != 0.0:
            sections[0, :3] *= correction
    return sections


def sos_to_tf(sections: np.ndarray) -> TransferFunction:
    """Recombine second-order sections into a single transfer function."""
    sections = np.atleast_2d(np.asarray(sections, dtype=float))
    if sections.shape[1] != 6:
        raise ValueError("sections must have 6 columns [b0 b1 b2 a0 a1 a2]")
    tf = TransferFunction.identity()
    for row in sections:
        tf = tf.cascade(TransferFunction(row[:3], row[3:]))
    return tf


def build_sos_graph(b, a, fractional_bits: int,
                    rounding: RoundingMode | str = RoundingMode.ROUND,
                    name: str = "sos-cascade"):
    """Expand ``B(z)/A(z)`` into a cascade-of-biquads signal-flow graph.

    Each biquad is an :class:`~repro.sfg.nodes.IirNode` with its own output
    quantizer, so the accuracy evaluators see one noise source per section
    shaped by the remaining sections — exactly the cascade noise model of
    Jackson's analysis.
    """
    from repro.sfg.builder import SfgBuilder

    sections = tf_to_sos(b, a)
    builder = SfgBuilder(name)
    previous = builder.input("x", fractional_bits=fractional_bits,
                             rounding=rounding)
    for index, row in enumerate(sections):
        previous = builder.iir(f"biquad{index}", row[:3], row[3:], previous,
                               fractional_bits=fractional_bits,
                               rounding=rounding)
    builder.output("y", previous)
    return builder.build()


def build_direct_form_graph(b, a, fractional_bits: int,
                            rounding: RoundingMode | str = RoundingMode.ROUND,
                            name: str = "direct-form"):
    """The monolithic direct-form counterpart of :func:`build_sos_graph`."""
    from repro.sfg.builder import SfgBuilder

    builder = SfgBuilder(name)
    x = builder.input("x", fractional_bits=fractional_bits, rounding=rounding)
    node = builder.iir("filter", b, a, x, fractional_bits=fractional_bits,
                       rounding=rounding)
    builder.output("y", node)
    return builder.build()
