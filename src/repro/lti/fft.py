"""Radix-2 FFT kernels, in double precision and bit-true fixed point.

The frequency-domain filtering system of the paper (Fig. 2) contains a
16-point FFT, a point-wise multiplication by filter coefficients and a
16-point inverse FFT.  To simulate that system in fixed point we need an
FFT whose internal arithmetic can be quantized stage by stage, which
off-the-shelf FFT routines do not expose.  This module provides:

* :func:`fft_radix2` / :func:`ifft_radix2` — a reference iterative radix-2
  decimation-in-time implementation (validated against ``numpy.fft`` in
  the tests);
* :class:`FixedPointFft` — the same butterflies with the twiddle factors
  stored in fixed point and each stage output re-quantized, i.e. the
  classical fixed-point FFT noise model (one white noise injection per
  stage).
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.quantizer import Quantizer, RoundingMode
from repro.fixedpoint.qformat import QFormat
from repro.simkernel.backend import resolve_backend
from repro.simkernel.fft import (
    bit_reverse_permutation as _bit_reverse_permutation,
    fixed_fft_forward,
    fixed_fft_inverse,
)


def _check_power_of_two(n: int) -> None:
    if n < 1 or (n & (n - 1)) != 0:
        raise ValueError(f"FFT size must be a power of two, got {n}")


def fft_radix2(x: np.ndarray) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT.

    The input length must be a power of two.  Matches ``numpy.fft.fft`` up
    to floating-point rounding.
    """
    x = np.asarray(x, dtype=complex)
    n = len(x)
    _check_power_of_two(n)
    data = x[_bit_reverse_permutation(n)].copy()
    size = 2
    while size <= n:
        half = size // 2
        twiddles = np.exp(-2j * np.pi * np.arange(half) / size)
        for start in range(0, n, size):
            # Copy the upper half: the in-place update below would otherwise
            # corrupt it before the lower half is computed.
            top = data[start:start + half].copy()
            bottom = data[start + half:start + size] * twiddles
            data[start:start + half] = top + bottom
            data[start + half:start + size] = top - bottom
        size *= 2
    return data


def ifft_radix2(x: np.ndarray) -> np.ndarray:
    """Inverse radix-2 FFT (scaled by ``1/N``)."""
    x = np.asarray(x, dtype=complex)
    n = len(x)
    _check_power_of_two(n)
    return np.conj(fft_radix2(np.conj(x))) / n


class FixedPointFft:
    """Bit-true fixed-point radix-2 FFT.

    Parameters
    ----------
    size:
        Transform size (power of two).
    fractional_bits:
        Precision of the data path; the real and imaginary parts of every
        butterfly output are quantized to this precision.
    twiddle_fractional_bits:
        Precision used to store the twiddle factors; defaults to the data
        precision.
    rounding:
        Rounding mode of the data-path quantizers.

    Notes
    -----
    Each of the ``log2(size)`` stages injects one white quantization noise
    per output sample (real and imaginary parts), which is the standard
    noise model used to characterize the FFT block for the analytical
    estimators (see :class:`repro.systems.freq_filter.FrequencyDomainFilter`).
    """

    def __init__(self, size: int, fractional_bits: int,
                 twiddle_fractional_bits: int | None = None,
                 rounding: RoundingMode = RoundingMode.ROUND):
        _check_power_of_two(size)
        self.size = size
        self.fractional_bits = fractional_bits
        self.twiddle_fractional_bits = (
            fractional_bits if twiddle_fractional_bits is None
            else twiddle_fractional_bits)
        self.rounding = rounding
        self._data_quantizer = Quantizer(QFormat(15, fractional_bits),
                                         rounding=rounding)
        twiddle_quantizer = Quantizer(QFormat(2, self.twiddle_fractional_bits),
                                      rounding=rounding)
        self._twiddle_cache = {}
        size_ = 2
        while size_ <= size:
            half = size_ // 2
            twiddles = np.exp(-2j * np.pi * np.arange(half) / size_)
            quantized = (twiddle_quantizer.quantize(twiddles.real)
                         + 1j * twiddle_quantizer.quantize(twiddles.imag))
            self._twiddle_cache[size_] = quantized
            size_ *= 2

    @property
    def num_stages(self) -> int:
        """Number of butterfly stages (``log2(size)``)."""
        return int(np.log2(self.size))

    def _quantize_complex(self, values: np.ndarray) -> np.ndarray:
        return (self._data_quantizer.quantize(values.real)
                + 1j * self._data_quantizer.quantize(values.imag))

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Fixed-point forward FFT over the last axis.

        Accepts one block of ``size`` samples or any stack of blocks
        ``(..., size)``; leading axes are independent transforms, all run
        in one vectorized pass (the ``reference`` backend replays the
        original per-block butterfly loop instead).
        """
        x = np.asarray(x, dtype=complex)
        if x.shape[-1] != self.size:
            raise ValueError(f"expected a block of {self.size} samples, "
                             f"got {x.shape[-1]}")
        if resolve_backend() == "reference":
            if x.ndim == 1:
                return self._forward_reference(x)
            flat = x.reshape(-1, self.size)
            return np.stack([self._forward_reference(row)
                             for row in flat]).reshape(x.shape)
        return fixed_fft_forward(x, self.size, self._twiddle_cache,
                                 self._quantize_complex)

    def inverse(self, x: np.ndarray) -> np.ndarray:
        """Fixed-point inverse FFT (scaled by ``1/size``) over the last axis."""
        x = np.asarray(x, dtype=complex)
        if x.shape[-1] != self.size:
            raise ValueError(f"expected a block of {self.size} samples, "
                             f"got {x.shape[-1]}")
        if resolve_backend() == "reference":
            result = np.conj(self.forward(np.conj(x))) / self.size
            return self._quantize_complex(result)
        return fixed_fft_inverse(x, self.size, self._twiddle_cache,
                                 self._quantize_complex)

    def _forward_reference(self, x: np.ndarray) -> np.ndarray:
        """The original per-block butterfly loop (legacy ground truth)."""
        data = self._quantize_complex(x[_bit_reverse_permutation(self.size)])
        size = 2
        while size <= self.size:
            half = size // 2
            twiddles = self._twiddle_cache[size]
            for start in range(0, self.size, size):
                # Copy the upper half before the in-place butterfly update.
                top = data[start:start + half].copy()
                bottom = data[start + half:start + size] * twiddles
                data[start:start + half] = top + bottom
                data[start + half:start + size] = top - bottom
            data = self._quantize_complex(data)
            size *= 2
        return data
