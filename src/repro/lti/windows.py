"""Window functions used by the windowed-sinc FIR design.

All windows are symmetric (filter-design convention) and returned as
length-``n`` float arrays.  Only numpy is used, so the implementations
double as a reference for the fixed-point versions used in tests.
"""

from __future__ import annotations

import numpy as np

_WINDOW_NAMES = ("rectangular", "hamming", "hann", "blackman", "kaiser")


def rectangular(n: int) -> np.ndarray:
    """Rectangular (boxcar) window."""
    _check_length(n)
    return np.ones(n, dtype=float)


def hamming(n: int) -> np.ndarray:
    """Hamming window (0.54 - 0.46 cos)."""
    _check_length(n)
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * k / (n - 1))


def hann(n: int) -> np.ndarray:
    """Hann (raised cosine) window."""
    _check_length(n)
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * k / (n - 1))


def blackman(n: int) -> np.ndarray:
    """Blackman window (three-term cosine sum)."""
    _check_length(n)
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    x = 2.0 * np.pi * k / (n - 1)
    return 0.42 - 0.5 * np.cos(x) + 0.08 * np.cos(2.0 * x)


def kaiser(n: int, beta: float = 8.6) -> np.ndarray:
    """Kaiser window with shape parameter ``beta``."""
    _check_length(n)
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    alpha = (n - 1) / 2.0
    argument = beta * np.sqrt(np.clip(1.0 - ((k - alpha) / alpha) ** 2, 0.0, None))
    return np.i0(argument) / np.i0(beta)


def get_window(name: str, n: int, beta: float = 8.6) -> np.ndarray:
    """Return the window ``name`` of length ``n``.

    Parameters
    ----------
    name:
        One of ``rectangular``, ``hamming``, ``hann``, ``blackman``,
        ``kaiser``.
    n:
        Window length.
    beta:
        Kaiser shape parameter (ignored for the other windows).
    """
    name = name.lower()
    if name == "rectangular":
        return rectangular(n)
    if name == "hamming":
        return hamming(n)
    if name == "hann":
        return hann(n)
    if name == "blackman":
        return blackman(n)
    if name == "kaiser":
        return kaiser(n, beta=beta)
    raise ValueError(f"unknown window {name!r}; expected one of {_WINDOW_NAMES}")


def _check_length(n: int) -> None:
    if n < 1:
        raise ValueError(f"window length must be positive, got {n}")
