"""Multirate operators: decimation (down-sampling) and expansion
(up-sampling).

The Daubechies 9/7 DWT codec of the paper's third experiment (Fig. 3) is a
two-channel filter bank built from these operators: analysis filters are
followed by ``2 v`` (keep one sample out of two) and synthesis filters are
preceded by ``2 ^`` (insert a zero between consecutive samples).

Besides the time-domain operators themselves, this module provides the
corresponding *PSD transformation rules* needed by the proposed estimation
method (aliasing for the decimator, imaging for the expander), expressed in
the library-wide convention that the bins of a discrete PSD sum to the
total signal power ``E[x^2]``.
"""

from __future__ import annotations

import numpy as np


def downsample(x: np.ndarray, factor: int = 2, phase: int = 0) -> np.ndarray:
    """Keep one sample out of ``factor``.

    Parameters
    ----------
    x:
        Input signal; the last axis is time (leading axes are independent
        trials).
    factor:
        Down-sampling factor ``M >= 1``.
    phase:
        Index of the first retained sample (``0 <= phase < factor``).
    """
    x = np.asarray(x)
    _check_factor(factor)
    if not 0 <= phase < factor:
        raise ValueError(f"phase must be in [0, {factor}), got {phase}")
    return x[..., phase::factor]


def upsample(x: np.ndarray, factor: int = 2) -> np.ndarray:
    """Insert ``factor - 1`` zeros between consecutive samples.

    The last axis is time; leading axes are independent trials.
    """
    x = np.asarray(x)
    _check_factor(factor)
    y = np.zeros(x.shape[:-1] + (x.shape[-1] * factor,), dtype=x.dtype)
    y[..., ::factor] = x
    return y


def downsample_psd(psd: np.ndarray, factor: int = 2) -> np.ndarray:
    """PSD of a signal after down-sampling by ``factor``.

    Down-sampling by ``M`` folds (aliases) the spectrum: the power that was
    spread over ``M`` input bins lands on one output bin.  Because a
    wide-sense-stationary signal keeps the same per-sample power after
    decimation (``E[y^2] = E[x^2]``), and because our discrete PSDs sum to
    the per-sample power, the output PSD on ``n // M`` bins is simply the
    sum of the ``M`` aliases::

        S_y[k] = sum_{m=0}^{M-1} S_x[k + m * (n // M)]

    Parameters
    ----------
    psd:
        Input PSD on ``n`` bins (the last axis; leading axes are
        independent configurations); ``n`` must be divisible by
        ``factor``.
    factor:
        Down-sampling factor.
    """
    psd = np.asarray(psd, dtype=float)
    _check_factor(factor)
    n = psd.shape[-1]
    if n % factor != 0:
        raise ValueError(f"PSD length {n} is not divisible by factor {factor}")
    out_len = n // factor
    return psd.reshape(psd.shape[:-1] + (factor, out_len)).sum(axis=-2)


def upsample_psd(psd: np.ndarray, factor: int = 2) -> np.ndarray:
    """PSD of a signal after zero-insertion up-sampling by ``factor``.

    Up-sampling by ``L`` compresses the spectrum and creates ``L`` images,
    and the per-sample power drops by ``L`` (only one sample in ``L`` is
    non-zero).  With the sum-to-power convention the ``L * n`` output bins
    must therefore sum to ``sum(S_x) / L`` while keeping the imaged shape::

        S_y[k] = S_x[k mod n] / L**2           (output length L * n)

    (one factor of ``L`` spreads the power over ``L`` times more bins, the
    other accounts for the actual power loss of zero insertion).  The last
    axis is the bin axis; leading axes are independent configurations.
    """
    psd = np.asarray(psd, dtype=float)
    _check_factor(factor)
    reps = (1,) * (psd.ndim - 1) + (factor,)
    return np.tile(psd / (factor * factor), reps)


def _check_factor(factor: int) -> None:
    if factor < 1:
        raise ValueError(f"factor must be at least 1, got {factor}")
