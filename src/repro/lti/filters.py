"""Stateful FIR / IIR filter implementations.

Two execution modes are provided for every filter:

* ``process`` — double-precision reference (the "infinite precision"
  baseline of the paper; IEEE double precision is used as reference just
  like in Section II).
* ``process_fixed_point`` — bit-true fixed-point execution where the
  coefficients, the products/accumulator output and (for IIR) the
  recirculated output are quantized.  The difference between both modes is
  the quantization error measured by the simulation-based evaluation
  method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter

from repro.fixedpoint.quantizer import Quantizer, RoundingMode
from repro.fixedpoint.qformat import QFormat
from repro.lti.transfer_function import TransferFunction
from repro.simkernel.iir import iir_df1_fixed


@dataclass(frozen=True)
class FixedPointFilterConfig:
    """Fixed-point configuration of a filter block.

    Attributes
    ----------
    data_fractional_bits:
        Fractional bits of the data path (products are accumulated in full
        precision and the result is quantized back to this precision).
    coefficient_fractional_bits:
        Fractional bits used to store the coefficients; defaults to the
        data precision when ``None``.
    rounding:
        Rounding mode of the data-path quantizers.
    quantize_input:
        Whether the block re-quantizes its input signal before use.
    """

    data_fractional_bits: int
    coefficient_fractional_bits: int | None = None
    rounding: RoundingMode = RoundingMode.ROUND
    quantize_input: bool = False

    @property
    def coeff_bits(self) -> int:
        """Effective coefficient precision."""
        if self.coefficient_fractional_bits is None:
            return self.data_fractional_bits
        return self.coefficient_fractional_bits

    def data_quantizer(self, integer_bits: int = 15) -> Quantizer:
        """Quantizer used on the data path."""
        return Quantizer(QFormat(integer_bits, self.data_fractional_bits),
                         rounding=self.rounding)

    def coefficient_quantizer(self, integer_bits: int = 15) -> Quantizer:
        """Quantizer used on the coefficients.

        Coefficients are design-time constants: they are always converted
        with round-to-nearest regardless of the data-path rounding mode, so
        that the reference (double-precision, quantized-coefficient) system
        and the fixed-point system share exactly the same coefficients.
        """
        return Quantizer(QFormat(integer_bits, self.coeff_bits),
                         rounding=RoundingMode.ROUND)


def _causal_fir(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Causal FIR filtering truncated to the input length.

    The 1-D path keeps the historical ``np.convolve`` implementation so
    existing results stay bitwise identical; stacked trials (last axis =
    time) go through ``lfilter``, which computes the same causal
    convolution per row.
    """
    if x.ndim == 1:
        return np.convolve(x, taps)[:len(x)]
    return lfilter(taps, [1.0], x, axis=-1)


class FirFilter:
    """Finite-impulse-response filter.

    Parameters
    ----------
    taps:
        Impulse response (filter coefficients).
    """

    def __init__(self, taps):
        taps = np.atleast_1d(np.asarray(taps, dtype=float))
        if taps.ndim != 1 or len(taps) == 0:
            raise ValueError("taps must be a non-empty 1-D array")
        self.taps = taps

    @property
    def num_taps(self) -> int:
        """Number of coefficients."""
        return len(self.taps)

    def transfer_function(self) -> TransferFunction:
        """Transfer function of the filter."""
        return TransferFunction.fir(self.taps)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def process(self, x: np.ndarray) -> np.ndarray:
        """Double-precision filtering (same length as the input).

        A 2-D input of shape ``(trials, samples)`` filters every trial
        along the last axis in one vectorized pass.
        """
        x = np.asarray(x, dtype=float)
        return _causal_fir(x, self.taps)

    def process_fixed_point(self, x: np.ndarray,
                            config: FixedPointFilterConfig) -> np.ndarray:
        """Fixed-point filtering.

        The coefficients are quantized to the coefficient precision, the
        convolution is computed exactly on the quantized operands and the
        result is quantized back to the data precision — i.e. a single
        quantization at the accumulator output, the standard DSP MAC
        model assumed by the paper's noise-source placement.
        """
        x = np.asarray(x, dtype=float)
        if config.quantize_input:
            x = config.data_quantizer().quantize(x)
        quantized_taps = config.coefficient_quantizer().quantize(self.taps)
        exact = _causal_fir(x, quantized_taps)
        return config.data_quantizer().quantize(exact)


class IirFilter:
    """Infinite-impulse-response filter in direct form I.

    Parameters
    ----------
    b, a:
        Numerator and denominator coefficients; ``a[0]`` must equal 1 (the
        coefficients are normalized if it does not).
    """

    def __init__(self, b, a):
        b = np.atleast_1d(np.asarray(b, dtype=float))
        a = np.atleast_1d(np.asarray(a, dtype=float))
        if a[0] == 0:
            raise ValueError("a[0] must be non-zero")
        self.b = b / a[0]
        self.a = a / a[0]

    @property
    def order(self) -> int:
        """Filter order."""
        return max(len(self.b), len(self.a)) - 1

    def transfer_function(self) -> TransferFunction:
        """Transfer function of the filter."""
        return TransferFunction(self.b, self.a)

    def noise_transfer_function(self) -> TransferFunction:
        """Transfer function from the output quantizer to the output.

        In direct form I the output of the multiply-accumulate tree is
        quantized before being stored into the recursive delay line, so the
        quantization error injected there is filtered by ``1 / A(z)``.
        """
        return TransferFunction([1.0], self.a)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def process(self, x: np.ndarray) -> np.ndarray:
        """Double-precision filtering."""
        return lfilter(self.b, self.a, np.asarray(x, dtype=float))

    def process_fixed_point(self, x: np.ndarray,
                            config: FixedPointFilterConfig) -> np.ndarray:
        """Bit-true fixed-point filtering (direct form I).

        The accumulator holds the exact sum of quantized-coefficient
        products; the accumulator output is quantized to the data
        precision before entering the recursive delay line, so the
        quantization error recirculates through ``1 / A(z)`` exactly as the
        analytical model assumes.

        The recursion runs through the scaled-integer-domain kernels of
        :mod:`repro.simkernel.iir` (bitwise identical to the historical
        per-sample loop, which survives as the ``reference`` backend).
        """
        x = np.asarray(x, dtype=float)
        if config.quantize_input:
            x = config.data_quantizer().quantize(x)
        coeff_q = config.coefficient_quantizer()
        b = coeff_q.quantize(self.b)
        a = coeff_q.quantize(self.a)
        step = config.data_quantizer().fmt.step
        return iir_df1_fixed(x, b, a, step, config.rounding)
