"""Windowed-sinc FIR filter design.

The paper's first experiment (Table I) evaluates the proposed method on a
bank of 147 FIR filters with low-pass, high-pass and band-pass
functionalities and between 16 and 128 taps.  This module provides the
designs used to generate that bank.

All cutoff frequencies are normalized to the Nyquist frequency, i.e. a
value of 1.0 corresponds to half the sampling rate (MATLAB ``fir1``
convention).
"""

from __future__ import annotations

import numpy as np

from repro.lti.windows import get_window


def _ideal_lowpass(num_taps: int, cutoff: float) -> np.ndarray:
    """Impulse response of the ideal (sinc) low-pass filter."""
    if not 0.0 < cutoff < 1.0:
        raise ValueError(f"cutoff must be in (0, 1), got {cutoff}")
    if num_taps < 2:
        raise ValueError(f"num_taps must be at least 2, got {num_taps}")
    center = (num_taps - 1) / 2.0
    k = np.arange(num_taps) - center
    # np.sinc is sin(pi x) / (pi x), so the ideal low-pass of normalized
    # cutoff ``fc`` (Nyquist = 1) is fc * sinc(fc * k).
    return cutoff * np.sinc(cutoff * k)


def _normalize_gain(taps: np.ndarray, frequency: float) -> np.ndarray:
    """Scale ``taps`` so that the gain at ``frequency`` (Nyquist units) is 1."""
    omega = np.pi * frequency
    k = np.arange(len(taps))
    gain = np.abs(np.sum(taps * np.exp(-1j * omega * k)))
    if gain == 0.0:
        raise ValueError("cannot normalize a filter with zero gain at the "
                         f"reference frequency {frequency}")
    return taps / gain


def design_fir_lowpass(num_taps: int, cutoff: float,
                       window: str = "hamming") -> np.ndarray:
    """Design a linear-phase low-pass FIR filter.

    Parameters
    ----------
    num_taps:
        Filter length.
    cutoff:
        Normalized cutoff frequency (1.0 = Nyquist).
    window:
        Window name, see :func:`repro.lti.windows.get_window`.
    """
    taps = _ideal_lowpass(num_taps, cutoff) * get_window(window, num_taps)
    return _normalize_gain(taps, 0.0)


def design_fir_highpass(num_taps: int, cutoff: float,
                        window: str = "hamming") -> np.ndarray:
    """Design a linear-phase high-pass FIR filter.

    High-pass designs require an odd number of taps (type-I linear phase);
    an even request is silently promoted to the next odd length, matching
    the behaviour of MATLAB's ``fir1``.
    """
    if num_taps % 2 == 0:
        num_taps += 1
    lowpass = _ideal_lowpass(num_taps, cutoff) * get_window(window, num_taps)
    # Spectral inversion: delta at the center minus the low-pass response.
    taps = -lowpass
    taps[(num_taps - 1) // 2] += 1.0
    return _normalize_gain(taps, 1.0)


def design_fir_bandpass(num_taps: int, low_cutoff: float, high_cutoff: float,
                        window: str = "hamming") -> np.ndarray:
    """Design a linear-phase band-pass FIR filter.

    Parameters
    ----------
    num_taps:
        Filter length.
    low_cutoff, high_cutoff:
        Normalized band edges, ``0 < low < high < 1``.
    window:
        Window name.
    """
    if not 0.0 < low_cutoff < high_cutoff < 1.0:
        raise ValueError("band edges must satisfy 0 < low < high < 1, got "
                         f"({low_cutoff}, {high_cutoff})")
    win = get_window(window, num_taps)
    taps = (_ideal_lowpass(num_taps, high_cutoff)
            - _ideal_lowpass(num_taps, low_cutoff)) * win
    center_frequency = (low_cutoff + high_cutoff) / 2.0
    return _normalize_gain(taps, center_frequency)


def design_fir_bandstop(num_taps: int, low_cutoff: float, high_cutoff: float,
                        window: str = "hamming") -> np.ndarray:
    """Design a linear-phase band-stop FIR filter.

    Band-stop designs require an odd number of taps; an even request is
    promoted to the next odd length.
    """
    if num_taps % 2 == 0:
        num_taps += 1
    if not 0.0 < low_cutoff < high_cutoff < 1.0:
        raise ValueError("band edges must satisfy 0 < low < high < 1, got "
                         f"({low_cutoff}, {high_cutoff})")
    win = get_window(window, num_taps)
    bandpass = (_ideal_lowpass(num_taps, high_cutoff)
                - _ideal_lowpass(num_taps, low_cutoff)) * win
    taps = -bandpass
    taps[(num_taps - 1) // 2] += 1.0
    return _normalize_gain(taps, 0.0)
