"""Rational transfer functions of discrete-time LTI systems.

The analytical accuracy-evaluation methods all need, for each block or for
each source-to-output path, either

* the impulse response (flat method, Eqs. 5-6: ``K_i = sum h_i(k)^2`` and
  ``L_ij = (sum h_i)(sum h_j)``), or
* the magnitude response sampled on ``N_PSD`` frequency bins (proposed
  method, Eq. 11: ``S_out = S_in * |H|^2``).

:class:`TransferFunction` provides both, together with composition
(cascade, parallel addition, feedback) so that path transfer functions can
be assembled from block transfer functions.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import lfilter


class TransferFunction:
    """A rational discrete-time transfer function ``B(z) / A(z)``.

    Coefficients follow the usual DSP convention::

        H(z) = (b[0] + b[1] z^-1 + ... + b[M] z^-M)
               / (1 + a[1] z^-1 + ... + a[N] z^-N)

    Parameters
    ----------
    b:
        Numerator coefficients.
    a:
        Denominator coefficients (defaults to ``[1.0]``, i.e. an FIR
        system).  ``a[0]`` must be non-zero; coefficients are normalized so
        that ``a[0] == 1``.
    """

    def __init__(self, b, a=None):
        b = np.atleast_1d(np.asarray(b, dtype=float))
        if a is None:
            a = np.array([1.0])
        a = np.atleast_1d(np.asarray(a, dtype=float))
        if b.ndim != 1 or a.ndim != 1:
            raise ValueError("b and a must be one-dimensional")
        if len(a) == 0 or a[0] == 0.0:
            raise ValueError("denominator must have a non-zero leading coefficient")
        self.b = b / a[0]
        self.a = a / a[0]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls) -> "TransferFunction":
        """The unit (pass-through) system ``H(z) = 1``."""
        return cls([1.0])

    @classmethod
    def gain(cls, value: float) -> "TransferFunction":
        """A constant gain ``H(z) = value``."""
        return cls([float(value)])

    @classmethod
    def delay(cls, samples: int) -> "TransferFunction":
        """A pure delay ``H(z) = z^-samples``."""
        if samples < 0:
            raise ValueError(f"delay must be non-negative, got {samples}")
        b = np.zeros(samples + 1)
        b[samples] = 1.0
        return cls(b)

    @classmethod
    def fir(cls, taps) -> "TransferFunction":
        """An FIR system with the given impulse response."""
        return cls(taps)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def is_fir(self) -> bool:
        """Whether the system has no feedback (denominator is trivial)."""
        return len(self.a) == 1 or np.allclose(self.a[1:], 0.0)

    @property
    def order(self) -> int:
        """Order of the system (max of numerator / denominator degree)."""
        return max(len(self.b), len(self.a)) - 1

    def poles(self) -> np.ndarray:
        """Poles of the transfer function."""
        if len(self.a) == 1:
            return np.array([], dtype=complex)
        return np.roots(self.a)

    def zeros(self) -> np.ndarray:
        """Zeros of the transfer function."""
        if len(self.b) == 1:
            return np.array([], dtype=complex)
        return np.roots(self.b)

    def is_stable(self, margin: float = 1e-9) -> bool:
        """Whether all poles lie strictly inside the unit circle."""
        poles = self.poles()
        if len(poles) == 0:
            return True
        return bool(np.all(np.abs(poles) < 1.0 - margin))

    def dc_gain(self) -> float:
        """Gain at zero frequency."""
        return float(np.sum(self.b) / np.sum(self.a))

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def frequency_response(self, n_points: int, whole: bool = True) -> np.ndarray:
        """Complex frequency response sampled on ``n_points`` bins.

        Parameters
        ----------
        n_points:
            Number of frequency samples.
        whole:
            If true (default), sample the full circle ``[0, 2*pi)`` — this
            matches the discrete-PSD convention where bin ``k`` corresponds
            to normalized frequency ``k / n_points``.  If false, sample
            ``[0, pi)`` only.
        """
        if n_points < 1:
            raise ValueError(f"n_points must be positive, got {n_points}")
        span = 2.0 * np.pi if whole else np.pi
        omega = span * np.arange(n_points) / n_points
        z = np.exp(1j * omega)
        zinv = 1.0 / z
        numerator = np.polyval(self.b[::-1], zinv)
        denominator = np.polyval(self.a[::-1], zinv)
        return numerator / denominator

    def magnitude_response(self, n_points: int, whole: bool = True) -> np.ndarray:
        """Squared-magnitude response ``|H(F)|^2`` on ``n_points`` bins."""
        response = self.frequency_response(n_points, whole=whole)
        return np.abs(response) ** 2

    def impulse_response(self, n_samples: int | None = None,
                         tol: float = 1e-12) -> np.ndarray:
        """Impulse response truncated to ``n_samples`` samples.

        For FIR systems the exact response is returned (padded or truncated
        to ``n_samples`` when requested).  For IIR systems the response is
        computed recursively; if ``n_samples`` is ``None`` the recursion is
        run until the tail contributes less than ``tol`` of the accumulated
        energy (with a hard cap to protect against unstable systems).
        """
        if self.is_fir:
            h = self.b.copy()
            if n_samples is None:
                return h
            if n_samples <= len(h):
                return h[:n_samples]
            return np.concatenate([h, np.zeros(n_samples - len(h))])

        if n_samples is not None:
            return self._iir_impulse(n_samples)

        # Adaptive length: keep doubling until the energy of the last
        # quarter is negligible compared to the total energy.
        length = max(256, 8 * self.order)
        hard_cap = 1 << 20
        while True:
            h = self._iir_impulse(length)
            total = np.dot(h, h)
            tail = np.dot(h[-length // 4:], h[-length // 4:])
            if total == 0.0 or tail <= tol * total or length >= hard_cap:
                return h
            length *= 2

    def _iir_impulse(self, n_samples: int) -> np.ndarray:
        impulse = np.zeros(n_samples)
        if n_samples == 0:
            return impulse
        impulse[0] = 1.0
        return self.filter(impulse)

    def filter(self, x: np.ndarray) -> np.ndarray:
        """Filter the signal ``x`` in double precision (direct form II).

        The last axis is time; leading axes (batched trials) are filtered
        independently.
        """
        x = np.asarray(x, dtype=float)
        if self.is_fir and x.ndim == 1:
            full = np.convolve(x, self.b)
            return full[:len(x)]
        return lfilter(self.b, self.a, x, axis=-1)

    # ------------------------------------------------------------------
    # Derived scalar quantities used by the analytical methods
    # ------------------------------------------------------------------
    def energy(self, n_samples: int | None = None) -> float:
        """Energy of the impulse response ``sum_k h(k)^2`` (Eq. 5)."""
        h = self.impulse_response(n_samples)
        return float(np.dot(h, h))

    def coefficient_sum(self, n_samples: int | None = None) -> float:
        """Sum of the impulse response ``sum_k h(k)``, equal to the DC gain."""
        if self.is_fir:
            return float(np.sum(self.b))
        return self.dc_gain()

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def cascade(self, other: "TransferFunction") -> "TransferFunction":
        """Series connection ``self * other``."""
        b = np.convolve(self.b, other.b)
        a = np.convolve(self.a, other.a)
        return TransferFunction(b, a)

    def parallel(self, other: "TransferFunction") -> "TransferFunction":
        """Parallel connection ``self + other``."""
        a = np.convolve(self.a, other.a)
        b1 = np.convolve(self.b, other.a)
        b2 = np.convolve(other.b, self.a)
        length = max(len(b1), len(b2))
        b = np.zeros(length)
        b[:len(b1)] += b1
        b[:len(b2)] += b2
        return TransferFunction(b, a)

    def feedback(self, other: "TransferFunction" = None) -> "TransferFunction":
        """Negative feedback loop ``self / (1 + self * other)``.

        ``other`` defaults to the identity (unity feedback).
        """
        if other is None:
            other = TransferFunction.identity()
        open_loop_b = np.convolve(self.b, other.b)
        denominator = np.convolve(self.a, other.a)
        length = max(len(denominator), len(open_loop_b))
        a = np.zeros(length)
        a[:len(denominator)] += denominator
        a[:len(open_loop_b)] += open_loop_b
        b = np.convolve(self.b, other.a)
        return TransferFunction(b, a)

    def scaled(self, gain: float) -> "TransferFunction":
        """The system multiplied by a constant gain."""
        return TransferFunction(self.b * gain, self.a)

    def __mul__(self, other):
        if isinstance(other, TransferFunction):
            return self.cascade(other)
        if np.isscalar(other):
            return self.scaled(float(other))
        return NotImplemented

    __rmul__ = __mul__

    def __add__(self, other):
        if isinstance(other, TransferFunction):
            return self.parallel(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TransferFunction(order={self.order}, "
                f"{'FIR' if self.is_fir else 'IIR'})")
