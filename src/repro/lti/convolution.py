"""Convolution engines: direct, overlap-save and overlap-add.

The frequency-domain filtering benchmark (Fig. 2 of the paper) applies an
FIR filter using the *overlap-save* method: the input is cut into
overlapping blocks, each block is transformed with a short FFT, multiplied
by the filter's frequency response and transformed back, and the aliased
part of each output block is discarded.  These engines are used both by
the double-precision reference and, with fixed-point FFT kernels, by the
fixed-point simulation of that benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.simkernel.backend import resolve_backend
from repro.simkernel.fft import overlap_save_assemble, overlap_save_blocks


def convolve(x: np.ndarray, h: np.ndarray, mode: str = "full") -> np.ndarray:
    """Direct linear convolution.

    Parameters
    ----------
    x, h:
        Input signal and impulse response.
    mode:
        ``full`` (default) returns the complete convolution of length
        ``len(x) + len(h) - 1``; ``same`` returns the first ``len(x)``
        samples, matching the streaming behaviour of a causal filter.
    """
    x = np.asarray(x, dtype=float)
    h = np.asarray(h, dtype=float)
    full = np.convolve(x, h)
    if mode == "full":
        return full
    if mode == "same":
        return full[:len(x)]
    raise ValueError(f"unknown mode {mode!r}")


def overlap_save(x: np.ndarray, h: np.ndarray, fft_size: int,
                 fft=None, ifft=None) -> np.ndarray:
    """Overlap-save convolution with a configurable FFT kernel.

    Parameters
    ----------
    x:
        Input signal.
    h:
        FIR impulse response; must satisfy ``len(h) <= fft_size``.
    fft_size:
        Transform size ``N``.  Each iteration produces
        ``N - len(h) + 1`` new output samples.
    fft, ifft:
        Optional transform kernels with the signature ``kernel(block) ->
        block``.  They default to :func:`numpy.fft.fft` /
        :func:`numpy.fft.ifft`; the fixed-point simulation passes the
        bit-true kernels from :mod:`repro.lti.fft` instead.

    Returns
    -------
    numpy.ndarray
        The first ``x.shape[-1]`` samples of ``x * h`` per stream (causal
        streaming output), identical (up to rounding) to
        ``convolve(x, h, "same")``.  With the default numpy kernels the
        last axis is time and leading axes are independent streams; the
        streaming loop used for custom kernels (and by the ``reference``
        backend) accepts 1-D input only.
    """
    x = np.asarray(x, dtype=float)
    h = np.asarray(h, dtype=float)
    if len(h) > fft_size:
        raise ValueError(f"impulse response ({len(h)} taps) does not fit in "
                         f"an FFT of size {fft_size}")
    if fft is None and ifft is None and resolve_backend() != "reference":
        # Default numpy kernels: transform every block (of every stream)
        # in one batched pass — bitwise identical to the streaming loop
        # below; the FFT of each block and the elementwise product are
        # unchanged.  The reference backend keeps the loop as the timing
        # baseline.
        h_padded = np.concatenate([h, np.zeros(fft_size - len(h))])
        h_spectrum = np.fft.fft(h_padded)
        blocks, hop = overlap_save_blocks(x, len(h), fft_size)
        spectra = np.fft.fft(blocks, axis=-1) * h_spectrum
        result = np.real(np.fft.ifft(spectra, axis=-1))
        return overlap_save_assemble(result, len(h), hop, x.shape[-1])
    if x.ndim != 1:
        raise ValueError(
            "the streaming overlap-save loop (custom FFT kernels or the "
            "reference backend) accepts a single 1-D stream, got shape "
            f"{x.shape}")
    if fft is None:
        fft = np.fft.fft
    if ifft is None:
        ifft = np.fft.ifft

    hop = fft_size - len(h) + 1
    h_padded = np.concatenate([h, np.zeros(fft_size - len(h))])
    h_spectrum = fft(h_padded)

    output = np.zeros(len(x) + fft_size)
    # Prepend len(h)-1 zeros so the first block produces the causal start.
    padded = np.concatenate([np.zeros(len(h) - 1), x,
                             np.zeros(fft_size)])
    position = 0
    out_position = 0
    while out_position < len(x):
        block = padded[position:position + fft_size]
        spectrum = fft(block) * h_spectrum
        result = np.real(ifft(spectrum))
        valid = result[len(h) - 1:]
        output[out_position:out_position + hop] = valid[:hop]
        position += hop
        out_position += hop
    return output[:len(x)]


def overlap_add(x: np.ndarray, h: np.ndarray, fft_size: int,
                fft=None, ifft=None) -> np.ndarray:
    """Overlap-add convolution with a configurable FFT kernel.

    Same interface as :func:`overlap_save`; provided for completeness and
    used in the ablation comparing the two block-convolution schemes.
    """
    x = np.asarray(x, dtype=float)
    h = np.asarray(h, dtype=float)
    if len(h) > fft_size:
        raise ValueError(f"impulse response ({len(h)} taps) does not fit in "
                         f"an FFT of size {fft_size}")
    if fft is None:
        fft = np.fft.fft
    if ifft is None:
        ifft = np.fft.ifft

    hop = fft_size - len(h) + 1
    h_padded = np.concatenate([h, np.zeros(fft_size - len(h))])
    h_spectrum = fft(h_padded)

    output = np.zeros(len(x) + fft_size)
    for start in range(0, len(x), hop):
        block = x[start:start + hop]
        block_padded = np.concatenate([block, np.zeros(fft_size - len(block))])
        spectrum = fft(block_padded) * h_spectrum
        result = np.real(ifft(spectrum))
        output[start:start + fft_size] += result
    return output[:len(x)]
