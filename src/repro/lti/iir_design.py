"""IIR filter design from analog prototypes.

The IIR half of the Table-I filter bank uses recursive filters of orders 2
to 10.  This module designs digital Butterworth and Chebyshev type-I
filters the classical way:

1. compute the analog low-pass prototype poles (and zeros for Chebyshev),
2. apply an analog frequency transform (low-pass, high-pass or band-pass),
3. map to the z-domain with the bilinear transform (with pre-warping).

Everything is built from numpy polynomial arithmetic; scipy is not
required, which keeps the substrate self-contained and easy to reason
about in the unit tests.
"""

from __future__ import annotations

import numpy as np


# ----------------------------------------------------------------------
# Analog low-pass prototypes (cutoff 1 rad/s)
# ----------------------------------------------------------------------
def butterworth_prototype(order: int) -> tuple[np.ndarray, np.ndarray, float]:
    """Poles, zeros and gain of the analog Butterworth prototype."""
    _check_order(order)
    k = np.arange(1, order + 1)
    theta = np.pi * (2.0 * k - 1.0) / (2.0 * order) + np.pi / 2.0
    poles = np.exp(1j * theta)
    zeros = np.array([], dtype=complex)
    gain = np.real(np.prod(-poles))
    return zeros, poles, gain


def chebyshev1_prototype(order: int, ripple_db: float = 1.0
                         ) -> tuple[np.ndarray, np.ndarray, float]:
    """Poles, zeros and gain of the analog Chebyshev type-I prototype.

    Parameters
    ----------
    order:
        Filter order.
    ripple_db:
        Pass-band ripple in decibels.
    """
    _check_order(order)
    if ripple_db <= 0:
        raise ValueError(f"ripple_db must be positive, got {ripple_db}")
    epsilon = np.sqrt(10.0 ** (ripple_db / 10.0) - 1.0)
    mu = np.arcsinh(1.0 / epsilon) / order
    k = np.arange(1, order + 1)
    theta = np.pi * (2.0 * k - 1.0) / (2.0 * order)
    poles = -np.sinh(mu) * np.sin(theta) + 1j * np.cosh(mu) * np.cos(theta)
    zeros = np.array([], dtype=complex)
    gain = np.real(np.prod(-poles))
    if order % 2 == 0:
        gain /= np.sqrt(1.0 + epsilon ** 2)
    return zeros, poles, gain


# ----------------------------------------------------------------------
# Analog frequency transforms
# ----------------------------------------------------------------------
def _lp_to_lp(zeros, poles, gain, warped):
    degree = len(poles) - len(zeros)
    zeros = zeros * warped
    poles = poles * warped
    gain = gain * warped ** degree
    return zeros, poles, gain


def _lp_to_hp(zeros, poles, gain, warped):
    degree = len(poles) - len(zeros)
    new_zeros = warped / zeros if len(zeros) else np.array([], dtype=complex)
    new_poles = warped / poles
    gain = gain * np.real(np.prod(-zeros) / np.prod(-poles)) if len(zeros) else \
        gain * np.real(1.0 / np.prod(-poles))
    new_zeros = np.concatenate([new_zeros, np.zeros(degree, dtype=complex)])
    return new_zeros, new_poles, gain


def _lp_to_bp(zeros, poles, gain, warped_center, bandwidth):
    degree = len(poles) - len(zeros)
    zeros_scaled = zeros * bandwidth / 2.0
    poles_scaled = poles * bandwidth / 2.0
    new_zeros = np.concatenate([
        zeros_scaled + np.sqrt(zeros_scaled ** 2 - warped_center ** 2),
        zeros_scaled - np.sqrt(zeros_scaled ** 2 - warped_center ** 2),
    ]) if len(zeros) else np.array([], dtype=complex)
    new_poles = np.concatenate([
        poles_scaled + np.sqrt(poles_scaled ** 2 - warped_center ** 2),
        poles_scaled - np.sqrt(poles_scaled ** 2 - warped_center ** 2),
    ])
    new_zeros = np.concatenate([new_zeros, np.zeros(degree, dtype=complex)])
    gain = gain * bandwidth ** degree
    return new_zeros, new_poles, gain


# ----------------------------------------------------------------------
# Bilinear transform
# ----------------------------------------------------------------------
def _bilinear_zpk(zeros, poles, gain, sample_rate: float = 2.0):
    """Map analog zeros/poles/gain to digital via the bilinear transform."""
    fs2 = 2.0 * sample_rate
    degree = len(poles) - len(zeros)
    digital_zeros = (fs2 + zeros) / (fs2 - zeros) if len(zeros) else \
        np.array([], dtype=complex)
    digital_poles = (fs2 + poles) / (fs2 - poles)
    # Analog zeros at infinity map to z = -1.
    digital_zeros = np.concatenate([digital_zeros, -np.ones(degree, dtype=complex)])
    numerator = np.prod(fs2 - zeros) if len(zeros) else 1.0
    denominator = np.prod(fs2 - poles)
    digital_gain = gain * np.real(numerator / denominator)
    return digital_zeros, digital_poles, digital_gain


def _zpk_to_tf(zeros, poles, gain) -> tuple[np.ndarray, np.ndarray]:
    """Convert zeros/poles/gain to transfer-function coefficients."""
    b = np.real(gain * np.poly(zeros)) if len(zeros) else np.array([gain])
    a = np.real(np.poly(poles))
    return np.atleast_1d(b), np.atleast_1d(a)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def design_iir_filter(order: int, cutoff, kind: str = "lowpass",
                      family: str = "butterworth",
                      ripple_db: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
    """Design a digital IIR filter.

    Parameters
    ----------
    order:
        Prototype order.  For band-pass designs the resulting digital
        filter has order ``2 * order``.
    cutoff:
        Normalized cutoff frequency (1.0 = Nyquist) for low-pass /
        high-pass designs, or a pair ``(low, high)`` for band-pass.
    kind:
        ``lowpass``, ``highpass`` or ``bandpass``.
    family:
        ``butterworth`` or ``chebyshev1``.
    ripple_db:
        Pass-band ripple for Chebyshev designs.

    Returns
    -------
    (b, a):
        Numerator and denominator coefficients of the digital filter, with
        ``a[0] == 1``.
    """
    family = family.lower()
    if family == "butterworth":
        zeros, poles, gain = butterworth_prototype(order)
    elif family in ("chebyshev1", "chebyshev", "cheby1"):
        zeros, poles, gain = chebyshev1_prototype(order, ripple_db=ripple_db)
    else:
        raise ValueError(f"unknown filter family {family!r}")

    kind = kind.lower()
    sample_rate = 2.0
    if kind in ("lowpass", "highpass"):
        cutoff = float(cutoff)
        if not 0.0 < cutoff < 1.0:
            raise ValueError(f"cutoff must be in (0, 1), got {cutoff}")
        warped = 2.0 * sample_rate * np.tan(np.pi * cutoff / 2.0)
        if kind == "lowpass":
            zeros, poles, gain = _lp_to_lp(zeros, poles, gain, warped)
        else:
            zeros, poles, gain = _lp_to_hp(zeros, poles, gain, warped)
    elif kind == "bandpass":
        low, high = (float(cutoff[0]), float(cutoff[1]))
        if not 0.0 < low < high < 1.0:
            raise ValueError("band edges must satisfy 0 < low < high < 1, "
                             f"got ({low}, {high})")
        warped_low = 2.0 * sample_rate * np.tan(np.pi * low / 2.0)
        warped_high = 2.0 * sample_rate * np.tan(np.pi * high / 2.0)
        bandwidth = warped_high - warped_low
        center = np.sqrt(warped_low * warped_high)
        zeros, poles, gain = _lp_to_bp(zeros, poles, gain, center, bandwidth)
    else:
        raise ValueError(f"unknown filter kind {kind!r}")

    zeros, poles, gain = _bilinear_zpk(zeros, poles, gain, sample_rate)
    b, a = _zpk_to_tf(zeros, poles, gain)
    # Normalize so that a[0] == 1.
    b = b / a[0]
    a = a / a[0]
    return b, a


def _check_order(order: int) -> None:
    if order < 1:
        raise ValueError(f"filter order must be at least 1, got {order}")
