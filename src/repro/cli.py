"""Command-line front end: evaluate a serialized fixed-point system.

Usage::

    python -m repro.cli evaluate system.json --method psd --n-psd 1024
    python -m repro.cli simulate system.json --samples 100000 --seed 3
    python -m repro.cli compare  system.json --methods psd agnostic flat
    python -m repro.cli optimize system.json --budget 1e-7
    python -m repro.cli sweep    system.json --budget-range 1e-5 1e-8 7
    python -m repro.cli campaign --scenarios polyphase_decimator \
        fft_butterfly --methods psd simulation --wordlengths 8 12 16
    python -m repro.cli fuzz --count 200 --seed 0 --artifacts fuzz-out
    python -m repro.cli fuzz --count 200 --backend codegen
    python -m repro.cli bench --tags smoke --check
    python -m repro.cli bench --tags smoke --check --json
    python -m repro.cli campaign --scenarios fft_butterfly \
        --trace trace.json --metrics metrics.json
    python -m repro.cli obs trace.json --metrics-file metrics.json

The system description is the JSON schema of
:mod:`repro.sfg.serialization`.  Stimuli for the simulation-based commands
are generated internally (uniform white noise) so the tool works without
any data files; a single ``--seed`` option, shared by every subcommand,
makes all of them reproducible end to end.

The ``campaign`` subcommand is the design-space front end
(:mod:`repro.campaign`): instead of one serialized system it takes named
scenarios from the registry (``--list-scenarios`` prints them, parameters
ride along as ``name:key=value,...``), expands a scenario x method x
word-length grid into content-addressed jobs, serves repeats from the
result cache and runs the rest on a process pool.  Execution is
supervised (``--max-retries`` / ``--payload-timeout``): failing payloads
are retried, bisected and quarantined as ``status="failed"`` records
rather than aborting the campaign, and ``--chaos SEED@RATE`` arms the
seeded fault injector for reproducible failure drills.  Exit codes: 0 on
success, 1 on error, **2 on partial failure** (the campaign completed
but quarantined at least one job; a machine-readable ``failure
summary:`` JSON line precedes the exit).

The ``fuzz`` subcommand is the differential verification front end
(:mod:`repro.verify`): it generates seeded random signal-flow graphs and
asserts the six cross-engine contracts on each (serialization
round-trip, compiled-plan vs legacy bitwise equivalence, batched vs
sequential equality, analytical-vs-simulation Ed band, incremental vs
cold-walk bitwise identity).  Failures are
shrunk to the simplest reproducing generator configuration and dumped as
serialized regression artifacts; the printed command line reproduces any
failure from its seed alone.

The ``bench`` subcommand is the performance-regression front end
(:mod:`repro.bench`): it runs the registered tagged benchmarks — each
timing the preserved legacy simulation loops against the optimized
kernels of :mod:`repro.simkernel` on the same workload and asserting the
outputs stay bitwise identical — writes one machine-readable
``BENCH_<name>.json`` per benchmark, and with ``--check`` exits nonzero
when any measured speedup falls below the committed baseline floors
(``--json`` emits the payloads and the full measured-vs-floor diff as
JSON instead of the table).

Every workload-running subcommand also carries the global observability
options (:mod:`repro.obs`): ``--trace FILE`` records structured spans at
each architectural boundary and writes Chrome trace-event JSON,
``--metrics FILE`` snapshots the metrics registry, and ``--log-level``
configures the namespaced ``repro.*`` loggers.  Both are off by default
and cost nothing when off.  The ``obs`` subcommand summarizes a saved
trace (per-span timing table, coverage, campaign cache-hit ratio).

Every command follows the library's graph → plan → run pipeline (see
ARCHITECTURE.md): the loaded graph is compiled once into a
:class:`~repro.sfg.plan.CompiledPlan` — validation, topological ordering
and frequency-response computation happen at that point — and all
subsequent evaluations replay the plan.  This matters most for
``optimize``, whose greedy refinement re-evaluates the system hundreds of
times on the shared plan.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.evaluator import AccuracyEvaluator
from repro.bench import DEFAULT_BASELINE
from repro.data.signals import uniform_white_noise
from repro.sfg.serialization import load_graph
from repro.systems.pareto import budget_range, sweep_noise_budgets
from repro.systems.wordlength import WordLengthOptimizer
from repro.utils.tables import TextTable


_LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


def _add_log_level_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--log-level", default=None, choices=_LOG_LEVELS,
                        help="configure logging at this level (the "
                             "namespaced repro.* loggers report cache "
                             "healing, codegen degradation, campaign "
                             "summaries, ...); unset leaves logging "
                             "unconfigured")


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    """The global observability options, shared by every subcommand."""
    group = parser.add_argument_group("observability")
    group.add_argument("--trace", default=None, metavar="FILE",
                       help="record structured trace spans for this "
                            "command and write them to FILE as Chrome "
                            "trace-event JSON (load in chrome://tracing "
                            "or Perfetto, or summarize with 'repro obs')")
    group.add_argument("--metrics", default=None, metavar="FILE",
                       help="collect the metrics registry for this "
                            "command and write its snapshot to FILE as "
                            "JSON")
    _add_log_level_option(group)


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("system", help="path to the JSON system description")
    _add_shared_options(parser)


def _add_shared_options(parser: argparse.ArgumentParser,
                        n_psd_default: int = 1024) -> None:
    parser.add_argument("--n-psd", type=int, default=n_psd_default,
                        help="number of PSD bins for the PSD-based methods")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed of every stimulus generated by "
                             "this command (reproducible end to end)")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PSD-based accuracy evaluation of fixed-point systems")
    commands = parser.add_subparsers(dest="command", required=True)

    evaluate = commands.add_parser(
        "evaluate", help="analytical estimate of the output noise power")
    _add_common_arguments(evaluate)
    evaluate.add_argument("--method", default="psd",
                          choices=("psd", "psd_tracked", "flat", "agnostic"))

    simulate = commands.add_parser(
        "simulate", help="Monte-Carlo measurement of the output noise power")
    _add_common_arguments(simulate)
    simulate.add_argument("--samples", type=int, default=100_000)
    simulate.add_argument("--amplitude", type=float, default=0.9)

    compare = commands.add_parser(
        "compare", help="simulation vs analytical estimates")
    _add_common_arguments(compare)
    compare.add_argument("--methods", nargs="+", default=["psd", "agnostic"])
    compare.add_argument("--samples", type=int, default=100_000)
    compare.add_argument("--amplitude", type=float, default=0.9)

    optimize = commands.add_parser(
        "optimize", help="greedy word-length optimization under a noise budget")
    _add_common_arguments(optimize)
    optimize.add_argument("--budget", type=float, required=True)
    optimize.add_argument("--method", default="psd",
                          choices=("psd", "flat", "agnostic"))
    optimize.add_argument("--min-bits", type=int, default=4)
    optimize.add_argument("--max-bits", type=int, default=24)
    optimize.add_argument("--granularity", default="node",
                          choices=("node", "edge"),
                          help="tune one width per quantized node (default) "
                               "or additionally one per fanout branch")

    sweep = commands.add_parser(
        "sweep",
        help="sweep noise budgets into a cost-vs-noise Pareto front")
    _add_common_arguments(sweep)
    budgets = sweep.add_mutually_exclusive_group(required=True)
    budgets.add_argument("--budgets", type=float, nargs="+",
                         help="explicit noise-power budgets to sweep")
    budgets.add_argument("--budget-range", type=float, nargs=3,
                         metavar=("LOOSEST", "TIGHTEST", "COUNT"),
                         help="geometric budget sweep (count points)")
    sweep.add_argument("--method", default="psd",
                       choices=("psd", "flat", "agnostic"))
    sweep.add_argument("--min-bits", type=int, default=4)
    sweep.add_argument("--max-bits", type=int, default=24)
    sweep.add_argument("--granularity", default="node",
                       choices=("node", "edge"),
                       help="tune one width per quantized node (default) "
                            "or additionally one per fanout branch")
    sweep.add_argument("--validate-samples", type=int, default=0,
                       help="cross-validate every point by a Monte-Carlo "
                            "run of this many samples (0 disables)")
    sweep.add_argument("--sequential", action="store_true",
                       help="disable configuration batching and memoized "
                            "re-evaluation (the timing baseline; results "
                            "are identical)")

    campaign = commands.add_parser(
        "campaign",
        help="run a multi-scenario evaluation campaign (cached, parallel, "
             "resumable)")
    campaign.add_argument("--scenarios", nargs="+", default=[],
                          metavar="NAME[:k=v,...]",
                          help="registered scenarios to run, with optional "
                               "parameter overrides (e.g. "
                               "polyphase_decimator:factor=8,taps=64)")
    campaign.add_argument("--list-scenarios", action="store_true",
                          help="print the scenario registry and exit")
    campaign.add_argument("--methods", nargs="+",
                          default=["psd", "simulation"],
                          choices=("psd", "psd_tracked", "flat", "agnostic",
                                   "simulation"),
                          help="evaluation methods of the grid; include "
                               "'simulation' to attach the Monte-Carlo "
                               "reference (enables the Ed columns)")
    campaign.add_argument("--wordlengths", nargs="+", type=int,
                          default=[8, 12, 16],
                          help="uniform fractional word lengths swept per "
                               "scenario")
    campaign.add_argument("--samples", type=int, default=0,
                          help="override the per-scenario stimulus length "
                               "(0 keeps each scenario's default)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="process-pool width (<= 1 runs inline)")
    campaign.add_argument("--cache-dir", default=None,
                          help="content-addressed result cache directory "
                               "(repeat runs are served from it)")
    campaign.add_argument("--output", default=None,
                          help="append every result to this JSONL file as "
                               "it completes (resume log)")
    campaign.add_argument("--csv", default=None,
                          help="export the joined report rows as CSV")
    campaign.add_argument("--json-report", default=None,
                          help="export summary + rows + records as JSON")
    campaign.add_argument("--max-retries", type=int, default=2,
                          help="re-dispatches a failing payload gets before "
                               "the supervisor bisects / quarantines it "
                               "(0 disables retries)")
    campaign.add_argument("--payload-timeout", type=float, default=0.0,
                          help="seconds a pool payload may run before it is "
                               "declared hung and its pool abandoned "
                               "(0 disables the watchdog)")
    campaign.add_argument("--chaos", default=None,
                          metavar="SEED@RATE[@KIND,KIND]",
                          help="arm the seeded fault injector, e.g. "
                               "7@0.25 or 7@0.25@exception,crash (kinds: "
                               "exception, crash, hang, corrupt); chaos "
                               "runs are reproducible per seed")
    _add_shared_options(campaign, n_psd_default=256)

    fuzz = commands.add_parser(
        "fuzz",
        help="differential verification of seeded random signal-flow "
             "graphs (round-trip, plan-vs-legacy, batch-vs-sequential, "
             "Ed band, incremental-vs-cold)")
    fuzz.add_argument("--count", type=int, default=50,
                      help="number of consecutive seeds to verify, "
                           "starting at --seed")
    fuzz.add_argument("--blocks", type=int, default=8,
                      help="growth operations per generated graph (the "
                           "knob the shrinker minimizes)")
    fuzz.add_argument("--single-rate", action="store_true",
                      help="generate single-rate graphs only (no "
                           "decimators / expanders)")
    fuzz.add_argument("--samples", type=int, default=2304,
                      help="stimulus length of the bitwise simulation "
                           "checks")
    fuzz.add_argument("--ed-samples", type=int, default=9216,
                      help="stimulus length of the Monte-Carlo run "
                           "backing the Ed-band check")
    fuzz.add_argument("--batch-configs", type=int, default=3,
                      help="random word-length configurations per graph "
                           "in the batch-vs-sequential check")
    fuzz.add_argument("--artifacts", default=None,
                      help="directory for shrunk failure artifacts "
                           "(serialized graph + verdict per failing seed)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report failures as found, without minimizing "
                           "them first")
    fuzz.add_argument("--n-psd", type=int, default=None,
                      help="PSD bin count of the PSD-based checks; must "
                           "be divisible by every decimation factor (the "
                           "default is compatible with any generated "
                           "graph)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first generator seed of the run (a failure "
                           "reproduces with --seed <failing seed> "
                           "--count 1)")
    fuzz.add_argument("--backend", default=None,
                      choices=("reference", "numpy", "numba", "codegen"),
                      help="force a simulation backend for the whole run "
                           "(errors out if the backend is not available "
                           "in this environment)")

    bench = commands.add_parser(
        "bench",
        help="run the tagged performance benchmarks and (optionally) "
             "check the measured speedups against the committed baseline")
    bench.add_argument("--tags", nargs="+", default=None,
                       help="run every registered benchmark carrying one "
                            "of these tags (default: smoke, unless "
                            "--names is given)")
    bench.add_argument("--names", nargs="+", default=None,
                       help="run exactly these registered benchmarks "
                            "(additionally filtered by --tags only when "
                            "--tags is passed explicitly)")
    bench.add_argument("--list", action="store_true", dest="list_benches",
                       help="print the benchmark registry and exit")
    bench.add_argument("--results", default="benchmarks/results",
                       help="directory receiving the BENCH_<name>.json "
                            "files")
    bench.add_argument("--samples", type=int, default=None,
                       help="override the per-benchmark workload size "
                            "(smoke-testing knob)")
    bench.add_argument("--check", action="store_true",
                       help="compare measured speedups against the "
                            "baseline floors; exit 1 on regression")
    bench.add_argument("--baseline", default=None,
                       help="baseline JSON with the speedup floors "
                            f"(default: {DEFAULT_BASELINE})")
    bench.add_argument("--backend", default=None,
                       choices=("reference", "numpy", "numba", "codegen"),
                       help="force a simulation backend for the whole run "
                            "(errors out if the backend is not available "
                            "in this environment)")
    bench.add_argument("--json", action="store_true", dest="json_output",
                       help="emit the measured payloads — and, with "
                            "--check, the full measured-vs-floor diff "
                            "including warmup_s — as JSON on stdout "
                            "instead of the table")

    obs_cmd = commands.add_parser(
        "obs",
        help="summarize a saved observability trace (written by the "
             "global --trace flag)")
    obs_cmd.add_argument("trace_file",
                         help="Chrome trace-event JSON written by --trace")
    obs_cmd.add_argument("--top", type=int, default=0,
                         help="limit the per-span table to the N largest "
                              "by total time (0 shows all)")
    obs_cmd.add_argument("--metrics-file", default=None,
                         help="also summarize this metrics snapshot "
                              "(written by the global --metrics flag)")
    _add_log_level_option(obs_cmd)

    # The global observability options ride on every workload-running
    # subcommand; 'obs' reads saved traces instead of recording new ones.
    for name, subparser in commands.choices.items():
        if name != "obs":
            _add_obs_options(subparser)
    return parser


def _forced_backend(args):
    """Context manager pinning the backend a command runs under.

    ``--backend`` forces the named backend for the lifetime of the
    command (taking precedence over ``REPRO_SIMD_BACKEND``); without it
    the normal resolution order applies.  Requesting a backend that is
    not available in this environment (e.g. ``numba`` without numba
    installed) raises a ValueError listing the available ones, which
    :func:`main` turns into a clear CLI error.
    """
    import contextlib

    from repro.simkernel.backend import available_backends, use_backend

    requested = getattr(args, "backend", None)
    if requested is None:
        return contextlib.nullcontext()
    if requested not in available_backends():
        raise ValueError(
            f"backend {requested!r} is not available in this environment; "
            f"available backends: {', '.join(available_backends())}")
    return use_backend(requested)


def _command_evaluate(args) -> int:
    graph = load_graph(args.system)
    evaluator = AccuracyEvaluator(graph, n_psd=args.n_psd)
    result = evaluator.estimate(args.method)
    print(f"system: {graph.name}")
    print(f"method: {result.method} (N_PSD={result.n_psd})")
    print(f"estimated output noise power: {result.power:.6e}")
    print(f"estimated mean / variance: {result.mean:.3e} / {result.variance:.6e}")
    print(f"evaluation time: {1000.0 * (result.elapsed_seconds or 0.0):.3f} ms")
    return 0


def _command_simulate(args) -> int:
    graph = load_graph(args.system)
    evaluator = AccuracyEvaluator(graph, n_psd=args.n_psd)
    stimulus = {name: uniform_white_noise(args.samples, args.amplitude,
                                          args.seed + index)
                for index, name in enumerate(graph.input_names())}
    result = evaluator.simulate(stimulus)
    print(f"system: {graph.name}")
    print(f"simulated output noise power: {result.error_power:.6e} "
          f"({result.num_samples} samples)")
    return 0


def _command_compare(args) -> int:
    graph = load_graph(args.system)
    evaluator = AccuracyEvaluator(graph, n_psd=args.n_psd)
    stimulus = {name: uniform_white_noise(args.samples, args.amplitude,
                                          args.seed + index)
                for index, name in enumerate(graph.input_names())}
    comparison = evaluator.compare(stimulus, methods=tuple(args.methods))
    table = TextTable(["method", "estimated power", "Ed [%]", "sub-one-bit?"],
                      title=f"{graph.name}: simulated power "
                            f"{comparison.simulation.error_power:.6e}")
    for name, report in comparison.reports.items():
        table.add_row(name, report.estimate.power,
                      round(report.ed_percent, 3),
                      "yes" if report.sub_one_bit else "NO")
    print(table.render())
    return 0


def _command_optimize(args) -> int:
    graph = load_graph(args.system)
    optimizer = WordLengthOptimizer(graph, method=args.method,
                                    n_psd=args.n_psd,
                                    min_bits=args.min_bits,
                                    max_bits=args.max_bits,
                                    granularity=args.granularity)
    result = optimizer.optimize(args.budget)
    table = TextTable(["signal", "fractional bits"],
                      title=f"{graph.name}: optimized word lengths "
                            f"(budget {args.budget:.3e})")
    for name, bits in sorted(result.assignment.items()):
        table.add_row(name, bits)
    print(table.render())
    print(f"estimated output noise: {result.noise_power:.6e}")
    print(f"total fractional bits: {result.total_bits}")
    print(f"analytical evaluations: {result.evaluations}")
    return 0


def _command_sweep(args) -> int:
    graph = load_graph(args.system)
    if args.budget_range is not None:
        loosest, tightest, count = args.budget_range
        budgets = budget_range(loosest, tightest, int(count))
    else:
        budgets = args.budgets
    if len(budgets) == 0:
        print("error: empty budget range (0 points requested)",
              file=sys.stderr)
        return 1
    front = sweep_noise_budgets(
        graph, budgets,
        method=args.method, n_psd=args.n_psd,
        min_bits=args.min_bits, max_bits=args.max_bits,
        mode="sequential" if args.sequential else None,
        granularity=args.granularity,
        validate_samples=args.validate_samples, seed=args.seed)
    if not front.points:
        print("error: no budget in the sweep is reachable within "
              f"{args.max_bits} fractional bits", file=sys.stderr)
        return 1
    print(front.describe())
    print(f"pareto-optimal points: {len(front.pareto_points())} "
          f"of {len(front.points)}")
    return 0


def _parse_scenario_argument(text: str):
    """Parse ``name`` or ``name:key=value,key=value`` into a ScenarioSpec."""
    from repro.campaign import ScenarioSpec

    name, _, tail = text.partition(":")
    params: dict = {}
    if tail:
        for pair in tail.split(","):
            key, separator, raw = pair.partition("=")
            if not separator or not key:
                raise ValueError(
                    f"bad scenario parameter {pair!r} in {text!r}; expected "
                    "name:key=value,key=value")
            try:
                value: object = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
            params[key] = value
    return ScenarioSpec(name, params)


def _command_campaign(args) -> int:
    from repro.campaign import (
        CampaignReport,
        CampaignSpec,
        FaultInjector,
        RetryPolicy,
        expand_campaign,
        get_family,
        run_campaign,
        scenario_names,
    )

    if args.list_scenarios:
        table = TextTable(["scenario", "parameters (defaults)", "description"],
                          title="registered scenario families")
        for name in scenario_names():
            family = get_family(name)
            defaults = ", ".join(f"{key}={value}" for key, value
                                 in sorted(family.defaults.items()))
            table.add_row(name, defaults, family.description)
        print(table.render())
        return 0
    if not args.scenarios:
        print("error: no scenarios given (see --list-scenarios)",
              file=sys.stderr)
        return 1

    scenarios = tuple(_parse_scenario_argument(text)
                      for text in args.scenarios)
    spec = CampaignSpec(scenarios=scenarios, methods=tuple(args.methods),
                        wordlengths=tuple(args.wordlengths),
                        n_psd=args.n_psd,
                        samples=args.samples if args.samples > 0 else None,
                        seed=args.seed)
    if args.max_retries < 0:
        print("error: --max-retries must be non-negative", file=sys.stderr)
        return 1
    policy = RetryPolicy(
        max_attempts=args.max_retries + 1,
        payload_timeout=args.payload_timeout
        if args.payload_timeout > 0 else None,
        seed=args.seed)
    injector = FaultInjector.parse(args.chaos) if args.chaos else None
    result = run_campaign(spec, cache_dir=args.cache_dir,
                          output_path=args.output, workers=args.workers,
                          retry_policy=policy, fault_injector=injector)
    report = CampaignReport(result.records)
    print(report.describe())
    print(f"cache: {result.cache_hits} hits / {result.total_jobs} jobs "
          f"({100.0 * result.hit_rate:.1f}%)")
    if result.skipped_unsupported:
        print(f"skipped {result.skipped_unsupported} unsupported grid "
              "point(s) (single-rate methods on multirate scenarios)")
    print(f"campaign time: {result.elapsed_seconds:.3f} s "
          f"({result.computed} computed, workers={args.workers})")
    if result.retries or result.bisections or result.pool_rebuilds:
        print(f"faults: {result.retries} retries, {result.bisections} "
              f"bisections, {result.pool_rebuilds} pool rebuilds")
    if injector is not None:
        # The injector's ground truth for this grid, for reconciliation
        # by the chaos-smoke CI job (and anyone replaying the seed).
        _prepared, jobs, _skipped = expand_campaign(spec)
        ledger = {key: {"kind": plan.kind, "permanent": plan.permanent}
                  for key, plan in sorted(
                      injector.ledger([job.key for job in jobs]).items())}
        print("chaos ledger: " + json.dumps(ledger, sort_keys=True))
    if args.csv:
        report.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.json_report:
        report.to_json(args.json_report)
        print(f"wrote {args.json_report}")
    if result.failed:
        summary = report.summary()
        print("failure summary: " + json.dumps(
            {"failed": summary["failed"], "failures": summary["failures"]},
            sort_keys=True))
        return 2
    return 0


def _command_fuzz(args) -> int:
    from repro.systems.random_graphs import COMPATIBLE_N_PSD
    from repro.verify import run_fuzz

    if args.count < 1:
        print("error: --count must be positive", file=sys.stderr)
        return 1
    if args.blocks < 0:
        print("error: --blocks must be non-negative", file=sys.stderr)
        return 1
    if args.seed < 0:
        print("error: --seed must be non-negative (generator seeds are "
              "unsigned)", file=sys.stderr)
        return 1
    for option, minimum in (("samples", 1), ("ed_samples", 1),
                            ("batch_configs", 1)):
        if getattr(args, option) < minimum:
            print(f"error: --{option.replace('_', '-')} must be at least "
                  f"{minimum}", file=sys.stderr)
            return 1
    if args.n_psd is not None and args.n_psd < 2:
        print("error: --n-psd must be at least 2", file=sys.stderr)
        return 1
    with _forced_backend(args):
        report = run_fuzz(
            range(args.seed, args.seed + args.count),
            blocks=args.blocks,
            multirate=not args.single_rate,
            artifacts_dir=args.artifacts,
            shrink=not args.no_shrink,
            n_psd=args.n_psd if args.n_psd is not None else COMPATIBLE_N_PSD,
            samples=args.samples,
            ed_samples=args.ed_samples,
            batch_configs=args.batch_configs)
    print(report.describe())
    return 0 if report.passed else 1


def _command_obs(args) -> int:
    from repro.obs.export import (
        load_metrics,
        load_trace,
        metrics_table,
        summarize_trace,
    )

    document = load_trace(args.trace_file)
    print(summarize_trace(document, top=args.top))
    if args.metrics_file:
        snapshot = load_metrics(args.metrics_file)
        print()
        print(metrics_table(snapshot["metrics"]))
    return 0


def _command_bench(args) -> int:
    import json

    from repro.bench import (
        BENCH_SCHEMA,
        baseline_diff,
        bench_entries,
        check_against_baseline,
        load_baseline,
        missing_baseline_entries,
        run_benches,
    )

    if args.list_benches:
        table = TextTable(["benchmark", "tags", "description"],
                          title="registered performance benchmarks")
        for entry in bench_entries():
            table.add_row(entry.name, ", ".join(entry.tags),
                          entry.description)
        print(table.render())
        return 0
    if args.samples is not None and args.samples < 256:
        print("error: --samples must be at least 256", file=sys.stderr)
        return 1
    # The smoke-tag default only applies to tag-driven selection; an
    # explicit --names list stands on its own unless --tags was also
    # passed explicitly.
    tags = args.tags if args.tags is not None else (
        None if args.names else ["smoke"])
    entries = bench_entries(tags=tags, names=args.names)
    if not entries:
        print("error: no registered benchmark matches the requested tags "
              f"{tags} / names {args.names}", file=sys.stderr)
        return 1
    with _forced_backend(args):
        payloads = run_benches(entries, args.results, samples=args.samples)
    if not args.json_output:
        table = TextTable(["benchmark", "speedups", "s"],
                          title="simulation-engine benchmarks (reference "
                                "backend vs optimized kernels)")
        for payload in payloads:
            speedups = ", ".join(f"{key} {value:.1f}x" for key, value
                                 in sorted(payload["speedup"].items()))
            table.add_row(payload["name"], speedups,
                          round(sum(payload["seconds"].values()), 3))
        print(table.render())
        print(f"wrote {len(payloads)} BENCH_*.json file(s) under "
              f"{args.results}")
    if not args.check:
        if args.json_output:
            print(json.dumps({"schema": BENCH_SCHEMA, "checked": False,
                              "results_dir": args.results,
                              "payloads": payloads},
                             indent=2, sort_keys=True))
        return 0
    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline = load_baseline(baseline_path)
    missing = missing_baseline_entries(payloads, baseline)
    regressions = check_against_baseline(payloads, baseline)
    ok = not missing and not regressions
    if args.json_output:
        # The machine-readable check report: the raw payloads (their
        # warmup_s included) plus one diff row per floored key, so CI can
        # graph margins instead of re-parsing the human table.
        print(json.dumps({"schema": BENCH_SCHEMA, "checked": True,
                          "baseline": str(baseline_path),
                          "results_dir": args.results,
                          "payloads": payloads,
                          "diff": baseline_diff(payloads, baseline),
                          "missing_baseline": missing,
                          "regressions": regressions,
                          "ok": ok},
                         indent=2, sort_keys=True))
        return 0 if ok else 1
    for name in missing:
        # A measured bench without a committed floor must fail with a
        # line naming the file and key to add, not a KeyError later.
        print(f"error: {baseline_path}: no baseline entry "
              f"floors.{name} for registered benchmark {name!r} — "
              "commit its speedup floor(s) before gating with --check",
              file=sys.stderr)
        return 1
    if regressions:
        for line in regressions:
            print(f"REGRESSION {line}", file=sys.stderr)
        return 1
    print(f"speedups at or above every baseline floor ({baseline_path})")
    return 0


_COMMANDS = {
    "evaluate": _command_evaluate,
    "simulate": _command_simulate,
    "compare": _command_compare,
    "optimize": _command_optimize,
    "sweep": _command_sweep,
    "campaign": _command_campaign,
    "fuzz": _command_fuzz,
    "bench": _command_bench,
    "obs": _command_obs,
}


def _configure_logging(level_name: str | None) -> None:
    """Wire the root logger when (and only when) --log-level was given.

    The default output of every command is byte-stable; leaving logging
    unconfigured without the flag keeps it that way (warnings still reach
    stderr through logging's last-resort handler).
    """
    if level_name is None:
        return
    import logging

    logging.basicConfig(level=getattr(logging, level_name.upper()),
                        format="%(levelname)s %(name)s: %(message)s",
                        stream=sys.stderr)


def main(argv=None) -> int:
    """Entry point (returns a process exit code)."""
    args = build_parser().parse_args(argv)
    _configure_logging(getattr(args, "log_level", None))
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    try:
        if trace_path is None and metrics_path is None:
            return _COMMANDS[args.command](args)
        # --trace / --metrics turn the no-op observability layer on for
        # exactly one command: the whole dispatch runs under a root
        # cli.<command> span (so a trace covers the full wall time) and
        # the session is exported after the command returns, even on a
        # nonzero exit status.
        from repro import obs
        from repro.obs.export import write_metrics, write_trace

        with obs.observe(trace=trace_path is not None) as session:
            with obs.span(f"cli.{args.command}"):
                status = _COMMANDS[args.command](args)
        if trace_path is not None:
            write_trace(trace_path, session)
            print(f"wrote {trace_path}")
        if metrics_path is not None:
            write_metrics(metrics_path, session)
            print(f"wrote {metrics_path}")
        return status
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
