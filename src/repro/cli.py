"""Command-line front end: evaluate a serialized fixed-point system.

Usage::

    python -m repro.cli evaluate system.json --method psd --n-psd 1024
    python -m repro.cli simulate system.json --samples 100000 --seed 3
    python -m repro.cli compare  system.json --methods psd agnostic flat
    python -m repro.cli optimize system.json --budget 1e-7
    python -m repro.cli sweep    system.json --budget-range 1e-5 1e-8 7

The system description is the JSON schema of
:mod:`repro.sfg.serialization`.  Stimuli for the simulation-based commands
are generated internally (uniform white noise) so the tool works without
any data files.

Every command follows the library's graph → plan → run pipeline (see
ARCHITECTURE.md): the loaded graph is compiled once into a
:class:`~repro.sfg.plan.CompiledPlan` — validation, topological ordering
and frequency-response computation happen at that point — and all
subsequent evaluations replay the plan.  This matters most for
``optimize``, whose greedy refinement re-evaluates the system hundreds of
times on the shared plan.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.evaluator import AccuracyEvaluator
from repro.data.signals import uniform_white_noise
from repro.sfg.serialization import load_graph
from repro.systems.pareto import budget_range, sweep_noise_budgets
from repro.systems.wordlength import WordLengthOptimizer
from repro.utils.tables import TextTable


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("system", help="path to the JSON system description")
    parser.add_argument("--n-psd", type=int, default=1024,
                        help="number of PSD bins for the PSD-based methods")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PSD-based accuracy evaluation of fixed-point systems")
    commands = parser.add_subparsers(dest="command", required=True)

    evaluate = commands.add_parser(
        "evaluate", help="analytical estimate of the output noise power")
    _add_common_arguments(evaluate)
    evaluate.add_argument("--method", default="psd",
                          choices=("psd", "psd_tracked", "flat", "agnostic"))

    simulate = commands.add_parser(
        "simulate", help="Monte-Carlo measurement of the output noise power")
    _add_common_arguments(simulate)
    simulate.add_argument("--samples", type=int, default=100_000)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--amplitude", type=float, default=0.9)

    compare = commands.add_parser(
        "compare", help="simulation vs analytical estimates")
    _add_common_arguments(compare)
    compare.add_argument("--methods", nargs="+", default=["psd", "agnostic"])
    compare.add_argument("--samples", type=int, default=100_000)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--amplitude", type=float, default=0.9)

    optimize = commands.add_parser(
        "optimize", help="greedy word-length optimization under a noise budget")
    _add_common_arguments(optimize)
    optimize.add_argument("--budget", type=float, required=True)
    optimize.add_argument("--method", default="psd",
                          choices=("psd", "flat", "agnostic"))
    optimize.add_argument("--min-bits", type=int, default=4)
    optimize.add_argument("--max-bits", type=int, default=24)

    sweep = commands.add_parser(
        "sweep",
        help="sweep noise budgets into a cost-vs-noise Pareto front")
    _add_common_arguments(sweep)
    budgets = sweep.add_mutually_exclusive_group(required=True)
    budgets.add_argument("--budgets", type=float, nargs="+",
                         help="explicit noise-power budgets to sweep")
    budgets.add_argument("--budget-range", type=float, nargs=3,
                         metavar=("LOOSEST", "TIGHTEST", "COUNT"),
                         help="geometric budget sweep (count points)")
    sweep.add_argument("--method", default="psd",
                       choices=("psd", "flat", "agnostic"))
    sweep.add_argument("--min-bits", type=int, default=4)
    sweep.add_argument("--max-bits", type=int, default=24)
    sweep.add_argument("--validate-samples", type=int, default=0,
                       help="cross-validate every point by a Monte-Carlo "
                            "run of this many samples (0 disables)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--sequential", action="store_true",
                       help="disable configuration batching (the timing "
                            "baseline; results are identical)")
    return parser


def _command_evaluate(args) -> int:
    graph = load_graph(args.system)
    evaluator = AccuracyEvaluator(graph, n_psd=args.n_psd)
    result = evaluator.estimate(args.method)
    print(f"system: {graph.name}")
    print(f"method: {result.method} (N_PSD={result.n_psd})")
    print(f"estimated output noise power: {result.power:.6e}")
    print(f"estimated mean / variance: {result.mean:.3e} / {result.variance:.6e}")
    print(f"evaluation time: {1000.0 * (result.elapsed_seconds or 0.0):.3f} ms")
    return 0


def _command_simulate(args) -> int:
    graph = load_graph(args.system)
    evaluator = AccuracyEvaluator(graph, n_psd=args.n_psd)
    stimulus = {name: uniform_white_noise(args.samples, args.amplitude,
                                          args.seed + index)
                for index, name in enumerate(graph.input_names())}
    result = evaluator.simulate(stimulus)
    print(f"system: {graph.name}")
    print(f"simulated output noise power: {result.error_power:.6e} "
          f"({result.num_samples} samples)")
    return 0


def _command_compare(args) -> int:
    graph = load_graph(args.system)
    evaluator = AccuracyEvaluator(graph, n_psd=args.n_psd)
    stimulus = {name: uniform_white_noise(args.samples, args.amplitude,
                                          args.seed + index)
                for index, name in enumerate(graph.input_names())}
    comparison = evaluator.compare(stimulus, methods=tuple(args.methods))
    table = TextTable(["method", "estimated power", "Ed [%]", "sub-one-bit?"],
                      title=f"{graph.name}: simulated power "
                            f"{comparison.simulation.error_power:.6e}")
    for name, report in comparison.reports.items():
        table.add_row(name, report.estimate.power,
                      round(report.ed_percent, 3),
                      "yes" if report.sub_one_bit else "NO")
    print(table.render())
    return 0


def _command_optimize(args) -> int:
    graph = load_graph(args.system)
    optimizer = WordLengthOptimizer(graph, method=args.method,
                                    n_psd=args.n_psd,
                                    min_bits=args.min_bits,
                                    max_bits=args.max_bits)
    result = optimizer.optimize(args.budget)
    table = TextTable(["node", "fractional bits"],
                      title=f"{graph.name}: optimized word lengths "
                            f"(budget {args.budget:.3e})")
    for name, bits in sorted(result.assignment.items()):
        table.add_row(name, bits)
    print(table.render())
    print(f"estimated output noise: {result.noise_power:.6e}")
    print(f"total fractional bits: {result.total_bits}")
    print(f"analytical evaluations: {result.evaluations}")
    return 0


def _command_sweep(args) -> int:
    graph = load_graph(args.system)
    if args.budget_range is not None:
        loosest, tightest, count = args.budget_range
        budgets = budget_range(loosest, tightest, int(count))
    else:
        budgets = args.budgets
    front = sweep_noise_budgets(
        graph, budgets,
        method=args.method, n_psd=args.n_psd,
        min_bits=args.min_bits, max_bits=args.max_bits,
        batch=not args.sequential,
        validate_samples=args.validate_samples, seed=args.seed)
    if not front.points:
        print("error: no budget in the sweep is reachable within "
              f"{args.max_bits} fractional bits", file=sys.stderr)
        return 1
    print(front.describe())
    print(f"pareto-optimal points: {len(front.pareto_points())} "
          f"of {len(front.points)}")
    return 0


_COMMANDS = {
    "evaluate": _command_evaluate,
    "simulate": _command_simulate,
    "compare": _command_compare,
    "optimize": _command_optimize,
    "sweep": _command_sweep,
}


def main(argv=None) -> int:
    """Entry point (returns a process exit code)."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
