"""Timing helpers used by the execution-time experiment (Fig. 6)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    Use as a context manager to accumulate wall-clock time over several
    code regions::

        watch = Stopwatch()
        with watch:
            do_work()
        print(watch.elapsed)
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Stopwatch":
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._started_at is None:
            raise RuntimeError("stopwatch was never started")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._started_at = None


def time_callable(function, *args, repeat: int = 1, **kwargs):
    """Run ``function`` ``repeat`` times and return ``(result, seconds_per_call)``.

    The result of the last call is returned; the timing is the average
    wall-clock duration over the repetitions.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be at least 1, got {repeat}")
    result = None
    start = time.perf_counter()
    for _ in range(repeat):
        result = function(*args, **kwargs)
    elapsed = (time.perf_counter() - start) / repeat
    return result, elapsed
