"""Small shared utilities: text tables, timing helpers and validation."""

from repro.utils.tables import TextTable
from repro.utils.timing import Stopwatch, time_callable
from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_same_length,
)

__all__ = [
    "TextTable",
    "Stopwatch",
    "time_callable",
    "check_positive_int",
    "check_probability",
    "check_same_length",
]
