"""Tiny argument-validation helpers shared across the library."""

from __future__ import annotations

import numpy as np


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_same_length(a, b, name_a: str = "a", name_b: str = "b") -> None:
    """Validate that two sequences have the same length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, got "
            f"{len(a)} and {len(b)}")
