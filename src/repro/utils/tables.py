"""Plain-text table rendering for the benchmark harnesses.

The benchmark scripts print the same rows as the paper's tables; this tiny
formatter keeps that output aligned and dependency-free.
"""

from __future__ import annotations


class TextTable:
    """A fixed-column plain-text table.

    Parameters
    ----------
    headers:
        Column titles.
    title:
        Optional table title printed above the header row.
    """

    def __init__(self, headers: list[str], title: str | None = None):
        if not headers:
            raise ValueError("a table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        """Append a row; cells are converted with ``str`` (floats via format)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}")
        formatted = []
        for cell in cells:
            if isinstance(cell, float):
                formatted.append(f"{cell:.6g}")
            else:
                formatted.append(str(cell))
        self.rows.append(formatted)

    def render(self) -> str:
        """Render the table as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render_row(cells: list[str]) -> str:
            return " | ".join(cell.ljust(width)
                              for cell, width in zip(cells, widths))

        separator = "-+-".join("-" * width for width in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(render_row(self.headers))
        lines.append(separator)
        lines.extend(render_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()
