"""Differential verification and fuzzing.

The fixture suites validate a handful of hand-built systems; this
subpackage turns the same contracts into a harness that can be pointed at
*any* graph — in particular the seeded random graphs of
:mod:`repro.systems.random_graphs` — and run at scale from the ``fuzz``
CLI subcommand:

* :mod:`~repro.verify.legacy` — the naive pre-compiled-plan reference
  traversals (the semantics every engine must reproduce bitwise);
* :mod:`~repro.verify.differential` — the six differential checks on
  one graph: serialization round-trip, plan-vs-legacy bitwise
  equivalence, batched-vs-sequential equality, the analytical-vs-
  simulation ``Ed`` band and incremental-vs-cold bitwise identity;
* :mod:`~repro.verify.fuzz` — the seeded fuzzing driver: verify a seed
  range, shrink every failure to its simplest reproducing generator
  configuration and dump serialized regression artifacts.
"""

from repro.verify.differential import (
    CHECK_NAMES,
    CheckResult,
    GraphVerdict,
    verify_graph,
)
from repro.verify.fuzz import (
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    dump_artifacts,
    run_fuzz,
    shrink_failure,
)
from repro.verify.legacy import (
    legacy_agnostic,
    legacy_flat,
    legacy_psd,
    legacy_run,
    legacy_tracked,
    legacy_walk,
)

__all__ = [
    "CHECK_NAMES",
    "CheckResult",
    "GraphVerdict",
    "verify_graph",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "dump_artifacts",
    "run_fuzz",
    "shrink_failure",
    "legacy_agnostic",
    "legacy_flat",
    "legacy_psd",
    "legacy_run",
    "legacy_tracked",
    "legacy_walk",
]
