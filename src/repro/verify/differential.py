"""Cross-engine differential verification of one signal-flow graph.

One graph, six independent consistency obligations — exactly the
contracts the fixture suites pin on the hand-built systems, generalized
so they can be asserted on *any* graph (in particular the seeded random
graphs of :mod:`repro.systems.random_graphs`):

1. **round_trip** — JSON serialization is loss-free: serialize → parse →
   rebuild preserves the canonical fingerprint;
2. **plan_vs_legacy** — every evaluation engine running through the
   compiled plan is *bitwise identical* to the naive per-call traversal
   (:mod:`repro.verify.legacy`): the PSD and moments walks, the flat and
   tracked engines (single-rate graphs) and both simulation modes;
3. **backend_equality** — the bit-true simulation produces identical
   bits under every available simulation-kernel backend
   (:mod:`repro.simkernel`): the preserved legacy per-sample loops
   (``reference``), the vectorized scaled-integer kernels (``numpy``),
   the whole-plan fused op tapes (``codegen``) and, when installed, the
   Numba JIT kernels;
4. **batch_vs_sequential** — the configuration-batched evaluation paths
   equal the sequential requantize-and-evaluate loop, row for row, bit
   for bit (analytical engines and the Monte-Carlo reference);
5. **ed_band** — the proposed PSD estimate tracks the Monte-Carlo
   measurement within the paper's sub-one-bit ``Ed`` band
   ``(-300 %, +75 %)``;
6. **incremental** — the memoized dirty-cone re-evaluation
   (:class:`~repro.analysis._engine.NoiseMemo`) stays *bitwise
   identical* to a cold full walk across a seeded sequence of
   ``requantize`` edits (multirate graphs included), against a freshly
   compiled plan, and through the configuration-batched walks.

Every check is exception-safe: an engine that crashes on a generated
graph is reported as that check's failure (with the exception text), not
as a crash of the harness — a fuzzer must keep running past the first
broken graph.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.agnostic_method import (
    evaluate_agnostic,
    evaluate_agnostic_batch,
)
from repro.analysis._engine import memoization_disabled, plan_memo
from repro.analysis.evaluator import AccuracyEvaluator
from repro.analysis.flat_method import evaluate_flat, evaluate_flat_batch
from repro.analysis.metrics import is_sub_one_bit
from repro.analysis.psd_method import (
    evaluate_psd,
    evaluate_psd_batch,
    evaluate_psd_tracked,
)
from repro.analysis.simulation_method import SimulationEvaluator
from repro.data.signals import uniform_white_noise
from repro.obs import span
from repro.sfg.executor import SfgExecutor
from repro.sfg.graph import SignalFlowGraph, is_multirate
from repro.sfg.plan import CompiledPlan, compile_plan
from repro.sfg.serialization import graph_fingerprint, graph_from_dict, graph_to_dict
from repro.systems.random_graphs import COMPATIBLE_N_PSD, random_assignments
from repro.verify.legacy import (
    legacy_agnostic,
    legacy_flat,
    legacy_psd,
    legacy_run,
    legacy_tracked,
)

#: The six differential obligations, in the order they are run.
CHECK_NAMES = ("round_trip", "plan_vs_legacy", "backend_equality",
               "batch_vs_sequential", "ed_band", "incremental")


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one differential check on one graph."""

    name: str
    passed: bool
    detail: str = ""

    def describe(self) -> str:
        status = "pass" if self.passed else "FAIL"
        tail = f" — {self.detail}" if self.detail else ""
        return f"{status} {self.name}{tail}"


@dataclass
class GraphVerdict:
    """All check outcomes for one graph."""

    graph_name: str
    checks: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list:
        """The failed checks only."""
        return [check for check in self.checks if not check.passed]

    def describe(self) -> str:
        """Deterministic multi-line summary (one line per check)."""
        lines = [f"{self.graph_name}: "
                 f"{'OK' if self.passed else 'FAILED'}"]
        lines.extend("  " + check.describe() for check in self.checks)
        return "\n".join(lines)


class _CheckFailure(AssertionError):
    """Raised inside a check body to fail it with a readable detail."""


def _require(condition: bool, detail: str) -> None:
    if not condition:
        raise _CheckFailure(detail)


def _stimulus(graph: SignalFlowGraph, samples: int, seed: int) -> dict:
    """Deterministic white stimulus, one independent stream per input."""
    return {name: uniform_white_noise(samples, 0.9, seed * 1_000_003 + index)
            for index, name in enumerate(sorted(graph.input_names()))}


# ----------------------------------------------------------------------
# The six checks
# ----------------------------------------------------------------------
def _check_round_trip(graph, plan, **options):
    data = graph_to_dict(graph)
    rebuilt = graph_from_dict(json.loads(json.dumps(data)))
    _require(graph_fingerprint(rebuilt) == graph_fingerprint(graph),
             "canonical fingerprint changed across serialize/parse/rebuild")
    _require(sorted(rebuilt.nodes) == sorted(graph.nodes),
             "node set changed across the round trip")
    _require(len(rebuilt.edges) == len(graph.edges),
             "edge count changed across the round trip")
    return "fingerprint stable"


def _check_plan_vs_legacy(graph, plan, *, samples, seed, n_psd, **options):
    via_plan = evaluate_psd(plan, n_psd)
    reference = legacy_psd(graph, n_psd)
    _require(np.array_equal(via_plan.ac, reference.ac)
             and via_plan.mean == reference.mean,
             "psd walk differs from the legacy traversal")

    stats = evaluate_agnostic(plan)
    reference = legacy_agnostic(graph)
    _require(stats.mean == reference.mean
             and stats.variance == reference.variance,
             "agnostic walk differs from the legacy traversal")

    if not is_multirate(graph):
        flat = evaluate_flat(plan)
        reference = legacy_flat(graph)
        _require(flat.mean == reference.mean
                 and flat.variance == reference.variance,
                 "flat engine differs from the legacy path composition")
        tracked = evaluate_psd_tracked(plan, n_psd)
        reference = legacy_tracked(graph, n_psd)
        _require(np.array_equal(tracked.ac, reference.ac)
                 and tracked.mean == reference.mean,
                 "tracked engine differs from the legacy traversal")

    stimulus = _stimulus(graph, samples, seed)
    executor = SfgExecutor(plan)
    for mode in ("double", "fixed"):
        via_plan = executor.run(stimulus, mode=mode).output(None)
        reference = legacy_run(graph, stimulus, mode)
        _require(np.array_equal(via_plan, reference),
                 f"{mode}-precision simulation differs from the legacy "
                 "traversal")
    return "all engines bitwise identical to the legacy traversals"


def _check_backend_equality(graph, plan, *, samples, seed, **options):
    from repro.simkernel import available_backends, use_backend

    stimulus = _stimulus(graph, samples, seed)
    executor = SfgExecutor(plan)
    outputs = {}
    for backend in available_backends():
        with use_backend(backend):
            outputs[backend] = executor.run(stimulus, mode="fixed").output(None)
    baseline = outputs["numpy"]
    for backend, output in outputs.items():
        _require(output.shape == baseline.shape
                 and np.array_equal(output, baseline),
                 f"{backend} backend differs bitwise from the numpy "
                 "kernels")
    return (f"{len(outputs)} backends bitwise identical "
            f"({', '.join(outputs)})")


def _check_batch_vs_sequential(graph, plan, *, samples, seed, n_psd,
                               batch_configs, **options):
    # edges=True: the vocabulary covers per-fanout-branch taps on top of
    # the node widths, so the batch/sequential equivalence pins the
    # fine-grained requantize path too.
    assignments = random_assignments(graph, seed + 1, batch_configs,
                                     edges=True)
    stimulus = _stimulus(graph, samples, seed)
    single_rate = not is_multirate(graph)

    psd_stack = evaluate_psd_batch(plan, n_psd, assignments)
    agnostic_stack = evaluate_agnostic_batch(plan, assignments)
    flat_stack = evaluate_flat_batch(plan, assignments) if single_rate \
        else None
    simulation = SimulationEvaluator(plan).evaluate_batch(assignments,
                                                          stimulus)
    with plan.preserve_quantization():
        for index, assignment in enumerate(assignments):
            # allow_enable: an assignment may re-enable a node the
            # previous one in the replay disabled.
            plan.requantize(assignment, allow_enable=True)
            scalar = evaluate_psd(plan, n_psd)
            _require(np.array_equal(psd_stack.ac[index], scalar.ac)
                     and psd_stack.mean[index] == scalar.mean,
                     f"psd batch row {index} differs from the sequential "
                     "evaluation")
            scalar = evaluate_agnostic(plan)
            _require(agnostic_stack.mean[index] == scalar.mean
                     and agnostic_stack.variance[index] == scalar.variance,
                     f"agnostic batch row {index} differs from the "
                     "sequential evaluation")
            if flat_stack is not None:
                scalar = evaluate_flat(plan)
                _require(flat_stack.mean[index] == scalar.mean
                         and flat_stack.variance[index] == scalar.variance,
                         f"flat batch row {index} differs from the "
                         "sequential evaluation")
            measured = SimulationEvaluator(plan).evaluate(stimulus)
            _require(simulation[index].error_power == measured.error_power
                     and simulation[index].error_mean == measured.error_mean
                     and simulation[index].num_samples
                     == measured.num_samples,
                     f"simulation batch row {index} differs from the "
                     "sequential evaluation")
    return f"{len(assignments)} configs bit-identical across all engines"


def _check_ed_band(graph, plan, *, seed, n_psd, ed_samples,
                   discard_transient, **options):
    # AccuracyEvaluator reuses the plan already attached to the graph
    # (compile_plan memoizes per graph object), so this does not
    # recompile anything.
    evaluator = AccuracyEvaluator(graph, n_psd=n_psd)
    stimulus = _stimulus(graph, ed_samples, seed + 2)
    comparison = evaluator.compare(stimulus, methods=("psd",),
                                   discard_transient=discard_transient)
    _require(comparison.simulation.error_power > 0.0,
             "simulation measured zero error power (no noise source "
             "reaches the output)")
    report = comparison.reports["psd"]
    _require(is_sub_one_bit(report.ed),
             f"Ed = {100.0 * report.ed:.1f}% outside the (-300%, +75%) "
             "sub-one-bit band")
    return f"Ed = {100.0 * report.ed:.1f}%"


def _check_incremental(graph, plan, *, seed, n_psd, batch_configs,
                       **options):
    single_rate = not is_multirate(graph)
    edits = random_assignments(graph, seed + 3, 4, edges=True)
    memo = plan_memo(plan)
    with plan.preserve_quantization():
        # Warm every memo channel on the current quantization, then
        # replay a seeded requantize-edit sequence: each memoized pull
        # (recomputing only the edit's dirty downstream cone) must be
        # bitwise identical to a cold full walk of the same state.
        evaluate_psd(plan, n_psd)
        evaluate_agnostic(plan)
        if single_rate:
            evaluate_psd_tracked(plan, n_psd)
        before = memo.counters()["cone_recomputes"]
        for index, assignment in enumerate(edits):
            plan.requantize(assignment, allow_enable=True)
            warm_psd = evaluate_psd(plan, n_psd)
            warm_stats = evaluate_agnostic(plan)
            warm_tracked = (evaluate_psd_tracked(plan, n_psd)
                            if single_rate else None)
            warm_flat = evaluate_flat(plan) if single_rate else None
            with memoization_disabled():
                cold_psd = evaluate_psd(plan, n_psd)
                cold_stats = evaluate_agnostic(plan)
                cold_tracked = (evaluate_psd_tracked(plan, n_psd)
                                if single_rate else None)
                cold_flat = evaluate_flat(plan) if single_rate else None
            _require(np.array_equal(warm_psd.ac, cold_psd.ac)
                     and warm_psd.mean == cold_psd.mean,
                     f"incremental psd after edit {index} differs from "
                     "the cold full walk")
            _require(warm_stats.mean == cold_stats.mean
                     and warm_stats.variance == cold_stats.variance,
                     f"incremental agnostic walk after edit {index} "
                     "differs from the cold full walk")
            if single_rate:
                _require(np.array_equal(warm_tracked.ac, cold_tracked.ac)
                         and warm_tracked.mean == cold_tracked.mean,
                         f"incremental tracked walk after edit {index} "
                         "differs from the cold full walk")
                _require(warm_flat.mean == cold_flat.mean
                         and warm_flat.variance == cold_flat.variance,
                         f"memoized flat evaluation after edit {index} "
                         "differs from the cold path composition")
        cones = memo.counters()["cone_recomputes"] - before

        # A freshly compiled plan of the edited graph has never seen the
        # edit history at all — its cold build must agree with the
        # incrementally maintained state.
        fresh = CompiledPlan(graph)
        fresh_psd = evaluate_psd(fresh, n_psd)
        final_psd = evaluate_psd(plan, n_psd)
        _require(np.array_equal(final_psd.ac, fresh_psd.ac)
                 and final_psd.mean == fresh_psd.mean,
                 "incrementally maintained state differs from a freshly "
                 "compiled plan")

        # The batched walks broadcast the memo's values outside each
        # stack's deviant cone; the rows must still match the
        # memo-blind batched evaluation bit for bit.
        stacks = random_assignments(graph, seed + 4, batch_configs)
        warm_psd_stack = evaluate_psd_batch(plan, n_psd, stacks)
        warm_agnostic = evaluate_agnostic_batch(plan, stacks)
        with memoization_disabled():
            cold_psd_stack = evaluate_psd_batch(plan, n_psd, stacks)
            cold_agnostic = evaluate_agnostic_batch(plan, stacks)
        _require(np.array_equal(warm_psd_stack.ac, cold_psd_stack.ac)
                 and np.array_equal(warm_psd_stack.mean,
                                    cold_psd_stack.mean),
                 "memoized psd batch walk differs from the memo-blind "
                 "batched evaluation")
        _require(np.array_equal(warm_agnostic.mean, cold_agnostic.mean)
                 and np.array_equal(warm_agnostic.variance,
                                    cold_agnostic.variance),
                 "memoized agnostic batch walk differs from the "
                 "memo-blind batched evaluation")
    return (f"{len(edits)} edits bit-identical to cold walks "
            f"({cones} cone recomputes)")


_CHECKS = {
    "round_trip": _check_round_trip,
    "plan_vs_legacy": _check_plan_vs_legacy,
    "backend_equality": _check_backend_equality,
    "batch_vs_sequential": _check_batch_vs_sequential,
    "ed_band": _check_ed_band,
    "incremental": _check_incremental,
}


def verify_graph(graph: SignalFlowGraph, seed: int = 0,
                 n_psd: int = COMPATIBLE_N_PSD,
                 samples: int = 2304, ed_samples: int = 9216,
                 discard_transient: int = 384, batch_configs: int = 3,
                 checks=CHECK_NAMES) -> GraphVerdict:
    """Run the differential checks on one graph.

    Parameters
    ----------
    graph:
        The system under verification (any acyclic SFG).
    seed:
        Base seed of every stimulus and assignment stack drawn by the
        checks; the verdict is deterministic in ``(graph, seed)``.
    n_psd:
        PSD bin count of the PSD-based engines.  For multirate graphs it
        must be divisible by every decimation factor
        (:data:`repro.systems.random_graphs.COMPATIBLE_N_PSD` always is).
    samples:
        Stimulus length of the bitwise simulation checks.
    ed_samples:
        Stimulus length of the Monte-Carlo run backing the Ed check
        (longer than ``samples`` — the band assertion needs a converged
        power measurement, the bitwise checks do not).
    discard_transient:
        Leading output samples dropped before the Ed measurement.
    batch_configs:
        Size of the random word-length stack of the batch check.
    checks:
        Subset of :data:`CHECK_NAMES` to run, in order.

    Returns
    -------
    GraphVerdict
        One :class:`CheckResult` per requested check; an engine crash is
        folded into that check's failure detail.
    """
    unknown = sorted(set(checks) - set(CHECK_NAMES))
    if unknown:
        raise ValueError(f"unknown check(s) {unknown}; expected a subset "
                         f"of {CHECK_NAMES}")
    verdict = GraphVerdict(graph_name=graph.name)
    try:
        plan = compile_plan(graph)
    except Exception as error:  # noqa: BLE001 - fuzzing must not stop
        # Nothing downstream can run without a plan; fail every requested
        # check with the compilation error so the fuzz run keeps going.
        verdict.checks.extend(CheckResult(
            name, False,
            f"plan compilation failed — {type(error).__name__}: {error}")
            for name in checks)
        return verdict
    options = dict(samples=samples, seed=seed, n_psd=n_psd,
                   batch_configs=batch_configs, ed_samples=ed_samples,
                   discard_transient=discard_transient)
    for name in checks:
        with span("verify.check", check=name,
                  graph=graph.name) as check_span:
            try:
                detail = _CHECKS[name](graph, plan, **options)
                verdict.checks.append(CheckResult(name, True, detail))
                check_span.set(passed=True)
            except _CheckFailure as failure:
                verdict.checks.append(CheckResult(name, False, str(failure)))
                check_span.set(passed=False)
            except Exception as error:  # noqa: BLE001 - fuzzing must not stop
                verdict.checks.append(CheckResult(
                    name, False, f"{type(error).__name__}: {error}"))
                check_span.set(passed=False)
    return verdict
