"""Seeded differential fuzzing: generate graphs, verify, shrink failures.

The driver behind the ``fuzz`` CLI subcommand: for every seed it builds a
random graph (:func:`repro.systems.random_graphs.build_random_graph`),
runs the six differential checks
(:func:`repro.verify.differential.verify_graph`) and, when a graph fails,

* **shrinks** the failure — regenerates the same seed at every smaller
  ``blocks`` budget (trying the single-rate variant first) and keeps the
  simplest configuration that still fails, and
* **dumps a regression artifact** — the serialized minimal graph plus a
  text verdict containing the exact one-line CLI command that reproduces
  the failure from nothing but the printed seed.

All of it is deterministic: the same seed range produces the same graphs,
verdicts, shrink results and artifacts, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.sfg.serialization import save_graph
from repro.systems.random_graphs import build_random_graph
from repro.verify.differential import (
    CHECK_NAMES,
    CheckResult,
    GraphVerdict,
    verify_graph,
)


#: Harness options that change what a verification observes, and the CLI
#: flags carrying them — the reproduction command must repeat them.
_OPTION_FLAGS = (("n_psd", "--n-psd"), ("samples", "--samples"),
                 ("ed_samples", "--ed-samples"),
                 ("batch_configs", "--batch-configs"))


@dataclass(frozen=True)
class FuzzCase:
    """One generator configuration (everything needed to rebuild it)."""

    seed: int
    blocks: int = 8
    multirate: bool = True

    def build(self):
        """Regenerate the graph of this case."""
        return build_random_graph(self.seed, blocks=self.blocks,
                                  multirate=self.multirate)

    def command(self, options: dict | None = None) -> str:
        """The CLI line reproducing this exact case.

        ``options`` are the harness settings of the run that found the
        failure (``n_psd``, ``samples``, ...); they are repeated on the
        command line because a failure may depend on them.
        """
        parts = [f"python -m repro.cli fuzz --seed {self.seed} --count 1",
                 f"--blocks {self.blocks}"]
        if not self.multirate:
            parts.append("--single-rate")
        for key, flag in _OPTION_FLAGS:
            if options and key in options:
                parts.append(f"{flag} {options[key]}")
        return " ".join(parts)


@dataclass
class FuzzFailure:
    """A failing seed, its verdict and the shrunk reproduction."""

    case: FuzzCase
    verdict: GraphVerdict
    minimal: FuzzCase
    minimal_verdict: GraphVerdict
    artifacts: tuple = ()
    options: dict = field(default_factory=dict)

    def describe(self) -> str:
        lines = [f"seed {self.case.seed}: FAILED "
                 f"({', '.join(c.name for c in self.verdict.failures)})",
                 f"  minimal reproduction: blocks={self.minimal.blocks} "
                 f"multirate={self.minimal.multirate}",
                 f"  reproduce with: {self.minimal.command(self.options)}"]
        lines.extend("  " + check.describe()
                     for check in self.minimal_verdict.failures)
        lines.extend(f"  artifact: {path}" for path in self.artifacts)
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one fuzzing run."""

    cases: int = 0
    failures: list = field(default_factory=list)
    checks: tuple = CHECK_NAMES

    @property
    def passed(self) -> bool:
        """Whether every fuzzed graph passed every check."""
        return not self.failures

    def describe(self) -> str:
        """Deterministic multi-line summary of the run."""
        lines = [f"fuzzed {self.cases} random graph(s) across "
                 f"{len(self.checks)} differential check(s): "
                 f"{'all passed' if self.passed else 'FAILURES'}"]
        lines.extend(failure.describe() for failure in self.failures)
        return "\n".join(lines)


def _verify_case(case: FuzzCase, verifier, verify_options) -> GraphVerdict:
    try:
        graph = case.build()
    except Exception as error:  # noqa: BLE001 - fuzzing must not stop
        # A generator crash is itself a reportable (and shrinkable)
        # failure, not a reason to abort the remaining seeds.
        verdict = GraphVerdict(graph_name=f"random-sfg-seed{case.seed}")
        verdict.checks.append(CheckResult(
            "generate", False,
            f"graph generation failed — {type(error).__name__}: {error}"))
        return verdict
    return verifier(graph, seed=case.seed, **verify_options)


def shrink_failure(case: FuzzCase, verifier=verify_graph,
                   **verify_options) -> FuzzCase:
    """Simplest generator configuration of ``case.seed`` that still fails.

    Candidates are scanned in increasing complexity — every ``blocks``
    budget from 0 up, the single-rate variant before the multirate one —
    and the first failing configuration wins.  The original case is known
    to fail, so the scan always terminates with a failing case (at worst
    the original one).
    """
    for blocks in range(case.blocks + 1):
        variants = [False, True] if case.multirate else [False]
        for multirate in variants:
            candidate = FuzzCase(case.seed, blocks=blocks,
                                 multirate=multirate)
            if candidate == case:
                return case
            if not _verify_case(candidate, verifier, verify_options).passed:
                return candidate
    return case


def dump_artifacts(directory: str | Path, case: FuzzCase,
                   verdict: GraphVerdict,
                   options: dict | None = None) -> tuple:
    """Write the regression artifacts of one (shrunk) failing case.

    ``seed<N>.json`` is the serialized graph — loadable by every CLI
    subcommand — and ``seed<N>.txt`` the verdict plus the reproducing
    command line (including the harness ``options`` of the run).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    graph_path = directory / f"seed{case.seed}.json"
    save_graph(case.build(), graph_path)
    text_path = directory / f"seed{case.seed}.txt"
    text_path.write_text(
        f"reproduce with: {case.command(options)}\n"
        f"generator: seed={case.seed} blocks={case.blocks} "
        f"multirate={case.multirate}\n\n"
        + verdict.describe() + "\n")
    return (str(graph_path), str(text_path))


def run_fuzz(seeds, blocks: int = 8, multirate: bool = True,
             artifacts_dir: str | Path | None = None, shrink: bool = True,
             verifier=verify_graph, **verify_options) -> FuzzReport:
    """Fuzz a range of seeds; shrink and dump every failure.

    Parameters
    ----------
    seeds:
        Iterable of generator seeds to verify.
    blocks, multirate:
        Generator size knobs, forwarded to every case.
    artifacts_dir:
        When given, each failure's shrunk graph and verdict are written
        there as regression artifacts.
    shrink:
        Whether to minimize failures before reporting (disable for a
        faster signal when triaging a long run).
    verifier:
        The per-graph verification entry point; injectable so the
        shrinking and artifact machinery can be tested against synthetic
        failures.
    verify_options:
        Forwarded to ``verifier`` (``n_psd``, ``samples``, ...).

    Returns
    -------
    FuzzReport
        Case count plus one :class:`FuzzFailure` per failing seed.
    """
    checks = verify_options.get("checks", CHECK_NAMES)
    report = FuzzReport(checks=tuple(checks))
    for seed in seeds:
        case = FuzzCase(int(seed), blocks=blocks, multirate=multirate)
        verdict = _verify_case(case, verifier, verify_options)
        report.cases += 1
        if verdict.passed:
            continue
        if shrink:
            # Shrinking only needs to reproduce the checks that actually
            # failed — re-running e.g. the Monte-Carlo Ed check on every
            # candidate when the failure was a cheap round-trip would
            # multiply the shrink cost for no information.
            failing = tuple(check.name for check in verdict.failures)
            shrink_options = dict(verify_options)
            if failing and set(failing) <= set(CHECK_NAMES):
                shrink_options["checks"] = failing
            minimal = shrink_failure(case, verifier=verifier,
                                     **shrink_options)
            # The reported verdict of the minimal case runs the full
            # check set once (it is also what the artifact records).
            minimal_verdict = (verdict if minimal == case
                               else _verify_case(minimal, verifier,
                                                 verify_options))
        else:
            minimal, minimal_verdict = case, verdict
        artifacts = ()
        if artifacts_dir is not None:
            try:
                artifacts = dump_artifacts(artifacts_dir, minimal,
                                           minimal_verdict,
                                           options=verify_options)
            except Exception as error:  # noqa: BLE001 - keep fuzzing
                artifacts = (f"<artifact dump failed — "
                             f"{type(error).__name__}: {error}>",)
        report.failures.append(FuzzFailure(
            case=case, verdict=verdict, minimal=minimal,
            minimal_verdict=minimal_verdict, artifacts=artifacts,
            options=dict(verify_options)))
    return report
