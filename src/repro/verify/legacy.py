"""Legacy (pre-compiled-plan) reference semantics.

The compiled-plan refactor must be a pure execution-architecture change:
for every evaluation engine, running through a
:class:`~repro.sfg.plan.CompiledPlan` must produce *bitwise identical*
results to the straightforward per-call traversal the library used before
(validate, re-derive the topological order, resolve predecessors by name,
call every node's propagation rule directly).  Those straightforward
traversals are re-implemented here — deliberately naive, sharing no code
with the plan layer — as the reference semantics of the differential
checks.

They started life as test-only helpers (``tests/legacy_reference.py``
still re-exports them for the fixture suites); they live in the package
because the fuzzing harness (:mod:`repro.verify.differential`) runs the
same plan-vs-legacy comparison from the ``fuzz`` CLI, outside pytest.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.noise_model import NoiseStats
from repro.lti.transfer_function import TransferFunction
from repro.psd.spectrum import DiscretePsd
from repro.psd.propagation import TrackedSpectrum
from repro.sfg.nodes import AddNode, IirNode, InputNode, OutputNode, _LtiMixin


def legacy_walk(graph, zero, propagate, inject):
    """Name-keyed per-call traversal (the pre-plan engine skeleton)."""
    graph.validate()
    order = graph.topological_order()
    results = {}
    for name in order:
        node = graph.node(name)
        if isinstance(node, InputNode) or node.num_inputs == 0:
            representation = zero(node)
        else:
            inputs = [results[edge.source]
                      for edge in graph.predecessors(name)]
            representation = propagate(node, inputs)
        own = node.generated_noise()
        if own.variance > 0.0 or own.mean != 0.0:
            representation = inject(node, own, representation)
        results[name] = representation
    return results


def legacy_psd(graph, n_psd):
    """Pre-plan PSD walk (proposed method) at the graph's single output."""
    def inject(node, stats, acc):
        psd = DiscretePsd.white(stats, acc.n_bins)
        if isinstance(node, IirNode):
            psd = psd.filtered(
                node.noise_shaping_function().frequency_response(acc.n_bins))
        return acc + psd

    results = legacy_walk(
        graph,
        zero=lambda node: DiscretePsd.zero(n_psd),
        propagate=lambda node, inputs: node.propagate_psd(inputs, n_psd),
        inject=inject)
    return results[graph.output_names()[0]]


def legacy_agnostic(graph):
    """Pre-plan moments-only walk at the graph's single output."""
    def inject(node, stats, acc):
        if isinstance(node, IirNode):
            shaping = node.noise_shaping_function()
            stats = NoiseStats(mean=stats.mean * shaping.coefficient_sum(),
                               variance=stats.variance * shaping.energy())
        return acc + stats

    results = legacy_walk(
        graph,
        zero=lambda node: NoiseStats(0.0, 0.0),
        propagate=lambda node, inputs: node.propagate_stats(inputs),
        inject=inject)
    return results[graph.output_names()[0]]


def legacy_tracked(graph, n_psd):
    """Pre-plan correlation-exact walk (single-rate graphs only)."""
    def inject(node, stats, acc):
        tracked = TrackedSpectrum.from_source(node.name, stats, n_psd)
        if isinstance(node, IirNode):
            tracked = tracked.filtered(
                node.noise_shaping_function().frequency_response(n_psd))
        return acc + tracked

    results = legacy_walk(
        graph,
        zero=lambda node: TrackedSpectrum.zero(n_psd),
        propagate=lambda node, inputs: node.propagate_tracked(inputs, n_psd),
        inject=inject)
    return results[graph.output_names()[0]].to_psd()


def legacy_flat(graph):
    """Pre-plan flat-spectrum path composition (Eq. 4 reference)."""
    graph.validate()
    paths = {}
    for name in graph.topological_order():
        node = graph.node(name)
        if isinstance(node, InputNode) or node.num_inputs == 0:
            accumulated = {}
        else:
            input_maps = [paths[edge.source]
                          for edge in graph.predecessors(name)]
            if isinstance(node, OutputNode):
                (single,) = input_maps
                accumulated = dict(single)
            elif isinstance(node, AddNode):
                accumulated = {}
                for sign, source_map in zip(node.signs, input_maps):
                    for source, tf in source_map.items():
                        contribution = tf.scaled(sign)
                        if source in accumulated:
                            accumulated[source] = \
                                accumulated[source].parallel(contribution)
                        else:
                            accumulated[source] = contribution
            elif isinstance(node, _LtiMixin):
                (single,) = input_maps
                block_tf = node._effective_transfer_function()
                accumulated = {source: tf.cascade(block_tf)
                               for source, tf in single.items()}
            else:
                raise NotImplementedError(type(node).__name__)
        own = node.generated_noise()
        if own.variance > 0.0 or own.mean != 0.0:
            shaping = (node.noise_shaping_function()
                       if isinstance(node, IirNode)
                       else TransferFunction.identity())
            if name in accumulated:
                accumulated[name] = accumulated[name].parallel(shaping)
            else:
                accumulated[name] = shaping
        paths[name] = accumulated

    path_functions = paths[graph.output_names()[0]]
    total_variance = 0.0
    mean_contributions = []
    for name, tf in path_functions.items():
        stats = graph.node(name).generated_noise()
        total_variance += stats.variance * tf.energy()
        mean_contributions.append(stats.mean * tf.coefficient_sum())
    return NoiseStats(mean=float(np.sum(mean_contributions)),
                      variance=total_variance)


def legacy_run(graph, inputs, mode):
    """Pre-plan name-keyed simulation (double or fixed mode)."""
    graph.validate()
    signals = {}
    for name in graph.topological_order():
        node = graph.node(name)
        if isinstance(node, InputNode):
            stimulus = np.asarray(inputs[name], dtype=float)
            if mode == "fixed" and node.quantization.enabled:
                stimulus = node.quantization.quantizer().quantize(stimulus)
            signals[name] = stimulus
            continue
        node_inputs = [signals[edge.source]
                       for edge in graph.predecessors(name)]
        signals[name] = (node.simulate(node_inputs) if mode == "double"
                         else node.simulate_fixed(node_inputs))
    return signals[graph.output_names()[0]]
