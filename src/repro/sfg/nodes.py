"""Node vocabulary of the signal-flow graph.

Every node type bundles four views of the same sub-system, one per
evaluation engine:

1. **double-precision simulation** — :meth:`Node.simulate`;
2. **fixed-point simulation** — :meth:`Node.simulate_fixed`, used by the
   reference (Monte-Carlo) evaluation method;
3. **moment propagation** — :meth:`Node.propagate_stats`, the PSD-agnostic
   rule that only carries ``(mu, sigma^2)`` across the node;
4. **PSD propagation** — :meth:`Node.propagate_psd` (proposed method,
   Eq. 11/14) and :meth:`Node.propagate_tracked` (correlation-exact
   variant used by the flat frequency-domain engine).

Nodes that perform arithmetic own a :class:`QuantizationSpec`; in fixed
point their output is re-quantized according to that spec and the
corresponding additive noise source is returned by
:meth:`Node.generated_noise`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from repro.fixedpoint.noise_model import NoiseStats, quantization_noise_stats
from repro.fixedpoint.quantizer import Quantizer, RoundingMode, round_half_away
from repro.fixedpoint.qformat import QFormat
from repro.lti.filters import FirFilter, FixedPointFilterConfig, IirFilter
from repro.lti.transfer_function import TransferFunction
from repro.psd.spectrum import DiscretePsd
from repro.psd.propagation import TrackedSpectrum


@dataclass(frozen=True)
class QuantizationSpec:
    """Word-length specification of a node's output.

    Attributes
    ----------
    fractional_bits:
        Fractional word length of the node output; ``None`` disables
        quantization (the node computes in full precision).
    rounding:
        Rounding mode of the output quantizer.
    coefficient_fractional_bits:
        Precision of the node's constant coefficients (gains, filter
        taps); defaults to ``fractional_bits``.
    input_fractional_bits:
        Precision of the grid the quantizer input lives on, used to refine
        the noise model for re-quantization; ``None`` means the input is
        treated as continuous-amplitude (the usual, conservative PQN
        assumption).
    edge_fractional_bits:
        Per-fanout-branch word lengths: sorted ``(target name, bits)``
        pairs, each re-quantizing the value carried by the single edge
        from this node to ``target name`` (the node's own output keeps
        ``fractional_bits``).  A tap with at least as many bits as the
        node output is a no-op (the value already lives on the coarser
        grid) and injects exactly zero noise.  Stored as a tuple so the
        spec stays hashable; dicts are normalized on construction.
    integer_bits:
        Per-signal integer width of the data-path quantizer (fed by
        :func:`repro.fixedpoint.range_analysis.assign_integer_bits`);
        ``None`` keeps the legacy 15-bit default.  Overflow handling is
        ``OverflowMode.NONE``, so the integer width never changes
        simulated values — it only documents/sizes the datapath.
    """

    fractional_bits: int | None
    rounding: RoundingMode = RoundingMode.ROUND
    coefficient_fractional_bits: int | None = None
    input_fractional_bits: int | None = None
    edge_fractional_bits: tuple = ()
    integer_bits: int | None = None

    def __post_init__(self):
        entries = self.edge_fractional_bits
        if isinstance(entries, dict):
            entries = entries.items()
        normalized = tuple(sorted((str(target), int(bits))
                                  for target, bits in entries))
        if len({target for target, _ in normalized}) != len(normalized):
            raise ValueError(
                "duplicate target in edge_fractional_bits: "
                f"{self.edge_fractional_bits!r}")
        object.__setattr__(self, "edge_fractional_bits", normalized)

    @property
    def enabled(self) -> bool:
        """Whether this spec quantizes the node's own output."""
        return self.fractional_bits is not None

    @property
    def coeff_bits(self) -> int | None:
        """Effective coefficient precision."""
        if self.coefficient_fractional_bits is None:
            return self.fractional_bits
        return self.coefficient_fractional_bits

    def quantizer(self, integer_bits: int | None = None) -> Quantizer:
        """Data-path quantizer described by this spec.

        Specs are frozen value objects, so the quantizer is memoized: the
        execution hot paths get one pre-constructed quantizer per distinct
        specification instead of building a fresh object per call.  The
        integer width defaults to the spec's own :attr:`integer_bits`
        (the legacy 15 when unset).
        """
        if not self.enabled:
            raise ValueError("cannot build a quantizer from a disabled spec")
        if integer_bits is None:
            integer_bits = 15 if self.integer_bits is None else self.integer_bits
        return _build_quantizer(self.fractional_bits, self.rounding,
                                integer_bits)

    def edge_quantizer(self, bits: int) -> Quantizer:
        """Quantizer of a fanout tap carrying this node's output.

        The tap re-quantizes the *source* signal, so it inherits the
        source spec's rounding mode and integer width.
        """
        integer = 15 if self.integer_bits is None else self.integer_bits
        return _build_quantizer(int(bits), self.rounding, integer)

    def edge_noise_stats(self, bits: int) -> NoiseStats:
        """PQN moments of the noise a fanout tap of ``bits`` bits injects.

        The tap input lives on the source's own output grid when the node
        quantizes (``fractional_bits``); a tap at least as fine as that
        grid is exactly noiseless.
        """
        return quantization_noise_stats(
            int(bits),
            rounding=self.rounding,
            input_fractional_bits=self.fractional_bits,
        )

    def noise_stats(self) -> NoiseStats:
        """PQN-model moments of the noise injected by this quantizer."""
        if not self.enabled:
            return NoiseStats(0.0, 0.0)
        return quantization_noise_stats(
            self.fractional_bits,
            rounding=self.rounding,
            input_fractional_bits=self.input_fractional_bits,
        )

    def with_fractional_bits(self, fractional_bits: int | None) -> "QuantizationSpec":
        """Copy of the spec with a different data word length.

        Implemented with :func:`dataclasses.replace` so every other field
        — including ones added later — is carried over by construction.
        """
        return replace(self, fractional_bits=fractional_bits)

    def edge_bits_for(self, target: str) -> int | None:
        """Fanout-tap word length toward ``target``, ``None`` when untapped."""
        for name, bits in self.edge_fractional_bits:
            if name == target:
                return bits
        return None

    def with_edge_fractional_bits(self, target: str,
                                  bits: int | None) -> "QuantizationSpec":
        """Copy with the tap toward ``target`` set (``None`` removes it)."""
        entries = dict(self.edge_fractional_bits)
        if bits is None:
            entries.pop(str(target), None)
        else:
            entries[str(target)] = int(bits)
        return replace(self, edge_fractional_bits=tuple(sorted(entries.items())))

    def with_integer_bits(self, integer_bits: int | None) -> "QuantizationSpec":
        """Copy of the spec with a different integer width."""
        return replace(self, integer_bits=integer_bits)


_NO_QUANTIZATION = QuantizationSpec(fractional_bits=None)


@lru_cache(maxsize=None)
def _build_quantizer(fractional_bits: int, rounding: RoundingMode,
                     integer_bits: int) -> Quantizer:
    return Quantizer(QFormat(integer_bits, fractional_bits),
                     rounding=rounding)


class Node:
    """Base class of every SFG node.

    Batched execution is part of the node contract: :meth:`simulate` and
    :meth:`simulate_fixed` must accept stacked stimuli — arrays whose
    *last* axis is time and whose leading axes are independent trials —
    and vectorize over them.  The executor runs a whole Monte-Carlo
    batch through every node in one call; there is no per-trial
    fallback.  (``supports_batch`` is retained for introspection and is
    always true.)
    """

    supports_batch = True

    def __init__(self, name: str, num_inputs: int,
                 quantization: QuantizationSpec | None = None):
        if not name:
            raise ValueError("node name must be non-empty")
        if num_inputs < 0:
            raise ValueError("num_inputs must be non-negative")
        self.name = name
        self.num_inputs = num_inputs
        self.quantization = quantization or _NO_QUANTIZATION

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, inputs: list[np.ndarray]) -> np.ndarray:
        """Double-precision behaviour of the node."""
        raise NotImplementedError

    def simulate_fixed(self, inputs: list[np.ndarray]) -> np.ndarray:
        """Fixed-point behaviour of the node.

        The default implementation runs the double-precision behaviour on
        the (already quantized) inputs and re-quantizes the output
        according to :attr:`quantization`.  Nodes with internal state that
        must be quantized inside a recursion (IIR filters) override this.
        """
        output = self.simulate(inputs)
        if self.quantization.enabled:
            output = self.quantization.quantizer().quantize(output)
        return output

    # ------------------------------------------------------------------
    # Noise generation
    # ------------------------------------------------------------------
    def generated_noise(self) -> NoiseStats:
        """Moments of the quantization noise injected at this node's output."""
        return self.quantization.noise_stats()

    # ------------------------------------------------------------------
    # Analytical propagation
    # ------------------------------------------------------------------
    def propagate_stats(self, inputs: list[NoiseStats]) -> NoiseStats:
        """Propagate input-noise moments blindly (PSD-agnostic rule)."""
        raise NotImplementedError

    def propagate_psd(self, inputs: list[DiscretePsd],
                      n_bins: int) -> DiscretePsd:
        """Propagate input-noise PSDs (proposed method, Eqs. 11 and 14)."""
        raise NotImplementedError

    def propagate_tracked(self, inputs: list[TrackedSpectrum],
                          n_bins: int) -> TrackedSpectrum:
        """Propagate per-source tracked spectra (correlation-exact rule)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class _LtiMixin:
    """Shared propagation rules for single-input LTI nodes."""

    def transfer_function(self) -> TransferFunction:
        raise NotImplementedError

    def _effective_transfer_function(self) -> TransferFunction:
        """Transfer function with quantized coefficients when applicable."""
        return self.transfer_function()

    def propagate_stats(self, inputs: list[NoiseStats]) -> NoiseStats:
        (stats,) = inputs
        tf = self._effective_transfer_function()
        variance = stats.variance * tf.energy()
        mean = stats.mean * tf.coefficient_sum()
        return NoiseStats(mean=mean, variance=variance)

    def propagate_psd(self, inputs: list[DiscretePsd],
                      n_bins: int) -> DiscretePsd:
        # The input PSD may live on fewer bins than the system-level n_bins
        # when the signal has been decimated upstream; the block response
        # is sampled on the input's own grid (normalized to its rate).
        (psd,) = inputs
        response = self._effective_transfer_function().frequency_response(psd.n_bins)
        return psd.filtered(response)

    def propagate_tracked(self, inputs: list[TrackedSpectrum],
                          n_bins: int) -> TrackedSpectrum:
        (tracked,) = inputs
        response = self._effective_transfer_function().frequency_response(n_bins)
        return tracked.filtered(response)


class InputNode(Node):
    """External input of the system.

    In fixed-point mode the input signal is quantized to the node's word
    length, which is where the "input quantization noise" of the paper's
    experiments enters the system.
    """

    def __init__(self, name: str, quantization: QuantizationSpec | None = None):
        super().__init__(name, num_inputs=0, quantization=quantization)

    def simulate(self, inputs: list[np.ndarray]) -> np.ndarray:
        raise RuntimeError("InputNode values are supplied by the executor")

    def propagate_stats(self, inputs: list[NoiseStats]) -> NoiseStats:
        return NoiseStats(0.0, 0.0)

    def propagate_psd(self, inputs: list[DiscretePsd], n_bins: int) -> DiscretePsd:
        return DiscretePsd.zero(n_bins)

    def propagate_tracked(self, inputs: list[TrackedSpectrum],
                          n_bins: int) -> TrackedSpectrum:
        return TrackedSpectrum.zero(n_bins)


class OutputNode(Node):
    """External output of the system (identity pass-through)."""

    def __init__(self, name: str):
        super().__init__(name, num_inputs=1)

    def simulate(self, inputs: list[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return np.asarray(x, dtype=float)

    def propagate_stats(self, inputs: list[NoiseStats]) -> NoiseStats:
        (stats,) = inputs
        return stats

    def propagate_psd(self, inputs: list[DiscretePsd], n_bins: int) -> DiscretePsd:
        (psd,) = inputs
        return psd.copy()

    def propagate_tracked(self, inputs: list[TrackedSpectrum],
                          n_bins: int) -> TrackedSpectrum:
        (tracked,) = inputs
        return tracked


class AddNode(Node):
    """N-ary adder / subtractor with unit (or signed-unit) input gains."""

    def __init__(self, name: str, num_inputs: int = 2,
                 signs: list[float] | None = None,
                 quantization: QuantizationSpec | None = None):
        super().__init__(name, num_inputs=num_inputs, quantization=quantization)
        if signs is None:
            signs = [1.0] * num_inputs
        if len(signs) != num_inputs:
            raise ValueError(
                f"expected {num_inputs} signs, got {len(signs)}")
        self.signs = [float(s) for s in signs]

    def simulate(self, inputs: list[np.ndarray]) -> np.ndarray:
        arrays = [np.asarray(x, dtype=float) for x in inputs]
        length = max(x.shape[-1] for x in arrays)
        leading = np.broadcast_shapes(*[x.shape[:-1] for x in arrays])
        output = np.zeros(leading + (length,))
        for sign, x in zip(self.signs, arrays):
            output[..., :x.shape[-1]] += sign * x
        return output

    def propagate_stats(self, inputs: list[NoiseStats]) -> NoiseStats:
        mean = sum(sign * stats.mean for sign, stats in zip(self.signs, inputs))
        variance = sum(sign * sign * stats.variance
                       for sign, stats in zip(self.signs, inputs))
        return NoiseStats(mean=mean, variance=variance)

    def propagate_psd(self, inputs: list[DiscretePsd], n_bins: int) -> DiscretePsd:
        result = DiscretePsd.zero(inputs[0].n_bins if inputs else n_bins)
        for sign, psd in zip(self.signs, inputs):
            result = result + psd.scaled(sign)
        return result

    def propagate_tracked(self, inputs: list[TrackedSpectrum],
                          n_bins: int) -> TrackedSpectrum:
        result = TrackedSpectrum.zero(n_bins)
        for sign, tracked in zip(self.signs, inputs):
            result = result + tracked.scaled(sign)
        return result


class GainNode(_LtiMixin, Node):
    """Multiplication by a constant coefficient."""

    def __init__(self, name: str, gain: float,
                 quantization: QuantizationSpec | None = None):
        super().__init__(name, num_inputs=1, quantization=quantization)
        self.gain = float(gain)

    def _quantized_gain(self) -> float:
        if self.quantization.enabled and self.quantization.coeff_bits is not None:
            step = 2.0 ** (-self.quantization.coeff_bits)
            return float(round_half_away(self.gain / step) * step)
        return self.gain

    def transfer_function(self) -> TransferFunction:
        return TransferFunction.gain(self.gain)

    def _effective_transfer_function(self) -> TransferFunction:
        return TransferFunction.gain(self._quantized_gain())

    def simulate(self, inputs: list[np.ndarray]) -> np.ndarray:
        # The reference system shares the (quantized) coefficients of the
        # fixed-point implementation; only the data path differs.  This is
        # the convention used throughout the library: coefficient
        # quantization is a deterministic design change, not a roundoff
        # noise source.
        (x,) = inputs
        return np.asarray(x, dtype=float) * self._quantized_gain()

    def simulate_fixed(self, inputs: list[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        output = np.asarray(x, dtype=float) * self._quantized_gain()
        if self.quantization.enabled:
            output = self.quantization.quantizer().quantize(output)
        return output


class DelayNode(_LtiMixin, Node):
    """Pure delay of an integer number of samples."""

    def __init__(self, name: str, delay: int = 1):
        super().__init__(name, num_inputs=1)
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = int(delay)

    def transfer_function(self) -> TransferFunction:
        return TransferFunction.delay(self.delay)

    def simulate(self, inputs: list[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        x = np.asarray(x, dtype=float)
        if self.delay == 0:
            return x.copy()
        if self.delay >= x.shape[-1]:
            return np.zeros_like(x)
        pad = np.zeros(x.shape[:-1] + (self.delay,))
        return np.concatenate([pad, x[..., :-self.delay]], axis=-1)


class FirNode(_LtiMixin, Node):
    """FIR filter block."""

    def __init__(self, name: str, taps,
                 quantization: QuantizationSpec | None = None):
        super().__init__(name, num_inputs=1, quantization=quantization)
        self.filter = FirFilter(taps)

    @property
    def taps(self) -> np.ndarray:
        """Filter coefficients."""
        return self.filter.taps

    def transfer_function(self) -> TransferFunction:
        return self.filter.transfer_function()

    def _effective_transfer_function(self) -> TransferFunction:
        if self.quantization.enabled and self.quantization.coeff_bits is not None:
            step = 2.0 ** (-self.quantization.coeff_bits)
            quantized = round_half_away(self.filter.taps / step) * step
            return TransferFunction.fir(quantized)
        return self.transfer_function()

    def simulate(self, inputs: list[np.ndarray]) -> np.ndarray:
        # Reference and fixed-point implementations share the quantized
        # coefficients; only the data-path precision differs.
        from repro.lti.filters import _causal_fir
        (x,) = inputs
        taps = self._effective_transfer_function().b
        return _causal_fir(np.asarray(x, dtype=float), taps)

    def simulate_fixed(self, inputs: list[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        if not self.quantization.enabled:
            return self.filter.process(x)
        config = FixedPointFilterConfig(
            data_fractional_bits=self.quantization.fractional_bits,
            coefficient_fractional_bits=self.quantization.coeff_bits,
            rounding=self.quantization.rounding,
        )
        return self.filter.process_fixed_point(x, config)


class IirNode(_LtiMixin, Node):
    """IIR filter block (direct form I).

    The output quantizer sits inside the recursion, so the generated noise
    is filtered by ``1 / A(z)`` before reaching the node output; the
    propagation engines query :meth:`noise_shaping_function` to apply that
    shaping to the node's own noise source.
    """

    def __init__(self, name: str, b, a,
                 quantization: QuantizationSpec | None = None):
        super().__init__(name, num_inputs=1, quantization=quantization)
        self.filter = IirFilter(b, a)

    def transfer_function(self) -> TransferFunction:
        return self.filter.transfer_function()

    def _effective_transfer_function(self) -> TransferFunction:
        if self.quantization.enabled and self.quantization.coeff_bits is not None:
            step = 2.0 ** (-self.quantization.coeff_bits)
            b = round_half_away(self.filter.b / step) * step
            a = round_half_away(self.filter.a / step) * step
            return TransferFunction(b, a)
        return self.transfer_function()

    def noise_shaping_function(self) -> TransferFunction:
        """Transfer function from the internal quantizer to the output."""
        if self.quantization.enabled and self.quantization.coeff_bits is not None:
            step = 2.0 ** (-self.quantization.coeff_bits)
            a = round_half_away(self.filter.a / step) * step
            return TransferFunction([1.0], a)
        return self.filter.noise_transfer_function()

    def simulate(self, inputs: list[np.ndarray]) -> np.ndarray:
        # Reference and fixed-point implementations share the quantized
        # coefficients; only the data-path precision differs.
        (x,) = inputs
        effective = self._effective_transfer_function()
        return effective.filter(np.asarray(x, dtype=float))

    def simulate_fixed(self, inputs: list[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        if not self.quantization.enabled:
            return self.filter.process(x)
        config = FixedPointFilterConfig(
            data_fractional_bits=self.quantization.fractional_bits,
            coefficient_fractional_bits=self.quantization.coeff_bits,
            rounding=self.quantization.rounding,
        )
        return self.filter.process_fixed_point(x, config)


class LtiNode(_LtiMixin, Node):
    """Generic LTI block defined by an arbitrary transfer function."""

    def __init__(self, name: str, transfer_function: TransferFunction,
                 quantization: QuantizationSpec | None = None):
        super().__init__(name, num_inputs=1, quantization=quantization)
        self._transfer_function = transfer_function

    def transfer_function(self) -> TransferFunction:
        return self._transfer_function

    def simulate(self, inputs: list[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return self._transfer_function.filter(np.asarray(x, dtype=float))


class DownsampleNode(Node):
    """Decimator (keep one sample out of ``factor``)."""

    def __init__(self, name: str, factor: int = 2, phase: int = 0):
        super().__init__(name, num_inputs=1)
        if factor < 1:
            raise ValueError(f"factor must be at least 1, got {factor}")
        self.factor = int(factor)
        self.phase = int(phase)

    def simulate(self, inputs: list[np.ndarray]) -> np.ndarray:
        from repro.lti.multirate import downsample
        (x,) = inputs
        return downsample(np.asarray(x, dtype=float), self.factor, self.phase)

    def propagate_stats(self, inputs: list[NoiseStats]) -> NoiseStats:
        (stats,) = inputs
        # Decimation of a WSS signal preserves per-sample moments.
        return stats

    def propagate_psd(self, inputs: list[DiscretePsd], n_bins: int) -> DiscretePsd:
        (psd,) = inputs
        return psd.downsampled(self.factor)

    def propagate_tracked(self, inputs: list[TrackedSpectrum],
                          n_bins: int) -> TrackedSpectrum:
        raise NotImplementedError(
            "per-source tracked propagation is only defined for LTI graphs; "
            "multirate systems use the hierarchical PSD engine")


class UpsampleNode(Node):
    """Expander (insert ``factor - 1`` zeros between samples)."""

    def __init__(self, name: str, factor: int = 2):
        super().__init__(name, num_inputs=1)
        if factor < 1:
            raise ValueError(f"factor must be at least 1, got {factor}")
        self.factor = int(factor)

    def simulate(self, inputs: list[np.ndarray]) -> np.ndarray:
        from repro.lti.multirate import upsample
        (x,) = inputs
        return upsample(np.asarray(x, dtype=float), self.factor)

    def propagate_stats(self, inputs: list[NoiseStats]) -> NoiseStats:
        (stats,) = inputs
        # Zero insertion divides per-sample power (and mean) by the factor.
        return NoiseStats(mean=stats.mean / self.factor,
                          variance=stats.variance / self.factor)

    def propagate_psd(self, inputs: list[DiscretePsd], n_bins: int) -> DiscretePsd:
        (psd,) = inputs
        return psd.upsampled(self.factor)

    def propagate_tracked(self, inputs: list[TrackedSpectrum],
                          n_bins: int) -> TrackedSpectrum:
        raise NotImplementedError(
            "per-source tracked propagation is only defined for LTI graphs; "
            "multirate systems use the hierarchical PSD engine")
