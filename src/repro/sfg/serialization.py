"""JSON serialization of signal-flow graphs.

A fixed-point design flow needs to exchange the system description between
tools (front-end capture, accuracy evaluation, word-length optimization,
report generation).  This module defines a small JSON schema for the
node / wiring / word-length information of a :class:`SignalFlowGraph` and
implements loss-free save / load for every built-in node type.

Schema (version 1)::

    {
      "version": 1,
      "name": "my-system",
      "nodes": [
        {"name": "x",   "type": "input",  "fractional_bits": 12,
         "rounding": "round"},
        {"name": "h",   "type": "fir",    "taps": [...],
         "fractional_bits": 12},
        {"name": "y",   "type": "output"}
      ],
      "edges": [
        {"source": "x", "target": "h", "port": 0},
        {"source": "h", "target": "y", "port": 0}
      ]
    }

The command-line front end (:mod:`repro.cli`) consumes these files.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.fixedpoint.quantizer import RoundingMode
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import (
    AddNode,
    DelayNode,
    DownsampleNode,
    FirNode,
    GainNode,
    IirNode,
    InputNode,
    LtiNode,
    Node,
    OutputNode,
    QuantizationSpec,
    UpsampleNode,
)
from repro.lti.transfer_function import TransferFunction

SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _spec_to_dict(spec: QuantizationSpec) -> dict:
    data: dict = {}
    if spec.enabled:
        data["fractional_bits"] = spec.fractional_bits
        data["rounding"] = spec.rounding.value
        if spec.coefficient_fractional_bits is not None:
            data["coefficient_fractional_bits"] = spec.coefficient_fractional_bits
        if spec.input_fractional_bits is not None:
            data["input_fractional_bits"] = spec.input_fractional_bits
    # Fine-grained fields are emitted independently of `enabled`: a
    # fanout tap on an unquantized source is legitimate (the tap then
    # quantizes a full-precision signal).  Specs without them serialize
    # byte-identically to the pre-edge schema.
    if spec.edge_fractional_bits:
        data["edge_fractional_bits"] = {target: bits for target, bits
                                        in spec.edge_fractional_bits}
        # Taps inherit the spec's rounding mode, which would otherwise
        # be dropped for disabled specs.
        data.setdefault("rounding", spec.rounding.value)
    if spec.integer_bits is not None:
        data["integer_bits"] = spec.integer_bits
    return data


def _node_to_dict(node: Node) -> dict:
    data: dict = {"name": node.name}
    data.update(_spec_to_dict(node.quantization))
    if isinstance(node, InputNode):
        data["type"] = "input"
    elif isinstance(node, OutputNode):
        data["type"] = "output"
    elif isinstance(node, AddNode):
        data["type"] = "add"
        data["signs"] = list(node.signs)
    elif isinstance(node, GainNode):
        data["type"] = "gain"
        data["gain"] = node.gain
    elif isinstance(node, DelayNode):
        data["type"] = "delay"
        data["delay"] = node.delay
    elif isinstance(node, FirNode) and type(node) is FirNode:
        data["type"] = "fir"
        data["taps"] = [float(t) for t in node.taps]
    elif isinstance(node, IirNode):
        data["type"] = "iir"
        data["b"] = [float(c) for c in node.filter.b]
        data["a"] = [float(c) for c in node.filter.a]
    elif isinstance(node, LtiNode):
        data["type"] = "lti"
        tf = node.transfer_function()
        data["b"] = [float(c) for c in tf.b]
        data["a"] = [float(c) for c in tf.a]
    elif isinstance(node, DownsampleNode):
        data["type"] = "downsample"
        data["factor"] = node.factor
        data["phase"] = node.phase
    elif isinstance(node, UpsampleNode):
        data["type"] = "upsample"
        data["factor"] = node.factor
    else:
        raise TypeError(
            f"node {node.name!r} of type {type(node).__name__} has no JSON "
            "serialization; serialize it as an equivalent 'fir'/'iir'/'lti' "
            "node instead")
    return data


def graph_to_dict(graph: SignalFlowGraph) -> dict:
    """Serialize a graph to a JSON-compatible dictionary."""
    return {
        "version": SCHEMA_VERSION,
        "name": graph.name,
        "nodes": [_node_to_dict(node) for node in graph.nodes.values()],
        "edges": [{"source": edge.source, "target": edge.target,
                   "port": edge.port} for edge in graph.edges],
    }


def save_graph(graph: SignalFlowGraph, path) -> None:
    """Write a graph to a JSON file."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2) + "\n")


# ----------------------------------------------------------------------
# Canonical fingerprints
# ----------------------------------------------------------------------
def canonical_graph_dict(graph: SignalFlowGraph) -> dict:
    """Ordering-stable variant of :func:`graph_to_dict`.

    ``graph_to_dict`` preserves insertion order (useful for readable JSON
    files); for content addressing the representation must not depend on
    the order in which nodes and edges were added, so nodes are sorted by
    name and edges by ``(target, port, source)``.
    """
    data = graph_to_dict(graph)
    data["nodes"] = sorted(data["nodes"], key=lambda node: node["name"])
    data["edges"] = sorted(data["edges"],
                           key=lambda e: (e["target"], e["port"], e["source"]))
    return data


def canonical_digest(payload: dict) -> str:
    """SHA-256 of a JSON-compatible payload in canonical form.

    The single digest primitive shared by every content-addressing site
    (graph / assignment fingerprints, campaign job keys, scenario
    signatures): sorted keys, compact separators, ``allow_nan=False`` so
    a stray NaN fails loudly instead of hashing as invalid JSON.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint_of_canonical_dict(canonical: dict) -> str:
    """Graph fingerprint from an already-canonical serialized dict.

    Callers that hold the :func:`canonical_graph_dict` output (e.g. the
    campaign expansion, which ships it to workers anyway) can hash it
    directly instead of re-serializing the graph.
    """
    return canonical_digest({"kind": "sfg-graph",
                             "schema": SCHEMA_VERSION,
                             "graph": canonical})


def graph_fingerprint(graph: SignalFlowGraph) -> str:
    """Canonical content hash of a graph (structure + quantization).

    The digest covers the full serialized description — node types,
    coefficients, wiring and word-length specs — in a byte-stable
    canonical form (version-tagged, sorted keys, sorted nodes and edges),
    so two graphs describing the same system hash identically regardless
    of construction order.  Used as the content-address of campaign cache
    keys (:mod:`repro.campaign.cache`).
    """
    return fingerprint_of_canonical_dict(canonical_graph_dict(graph))


def assignment_fingerprint(assignment: dict) -> str:
    """Canonical content hash of a word-length assignment.

    ``assignment`` maps node names to fractional bit counts (``None``
    disables quantization), as consumed by ``CompiledPlan.requantize`` and
    the batched evaluators.  Keys are sorted, so dict insertion order does
    not leak into the digest.
    """
    canonical = {str(name): (None if bits is None else int(bits))
                 for name, bits in assignment.items()}
    return canonical_digest({"kind": "wordlength-assignment",
                             "schema": SCHEMA_VERSION,
                             "assignment": canonical})


# ----------------------------------------------------------------------
# Deserialization
# ----------------------------------------------------------------------
def _spec_from_dict(data: dict) -> QuantizationSpec:
    edge_bits = {str(target): int(bits) for target, bits
                 in data.get("edge_fractional_bits", {}).items()}
    integer_bits = data.get("integer_bits")
    integer_bits = None if integer_bits is None else int(integer_bits)
    if "fractional_bits" not in data or data["fractional_bits"] is None:
        if not edge_bits and integer_bits is None:
            return QuantizationSpec(None)
        return QuantizationSpec(
            None,
            rounding=RoundingMode(data.get("rounding", "round")),
            edge_fractional_bits=edge_bits,
            integer_bits=integer_bits,
        )
    return QuantizationSpec(
        fractional_bits=int(data["fractional_bits"]),
        rounding=RoundingMode(data.get("rounding", "round")),
        coefficient_fractional_bits=data.get("coefficient_fractional_bits"),
        input_fractional_bits=data.get("input_fractional_bits"),
        edge_fractional_bits=edge_bits,
        integer_bits=integer_bits,
    )


def _node_from_dict(data: dict) -> Node:
    node_type = data.get("type")
    name = data.get("name")
    if not name:
        raise ValueError("every node needs a non-empty 'name'")
    spec = _spec_from_dict(data)
    if node_type == "input":
        return InputNode(name, spec)
    if node_type == "output":
        return OutputNode(name)
    if node_type == "add":
        signs = data.get("signs", [1.0, 1.0])
        return AddNode(name, num_inputs=len(signs), signs=signs,
                       quantization=spec)
    if node_type == "gain":
        return GainNode(name, float(data["gain"]), quantization=spec)
    if node_type == "delay":
        node = DelayNode(name, int(data.get("delay", 1)))
        # Delay nodes never quantize their own output, but their spec
        # may still carry fanout-tap widths — reattach it so the
        # round-trip stays loss-free.
        node.quantization = spec
        return node
    if node_type == "fir":
        return FirNode(name, data["taps"], quantization=spec)
    if node_type == "iir":
        return IirNode(name, data["b"], data["a"], quantization=spec)
    if node_type == "lti":
        return LtiNode(name, TransferFunction(data["b"], data.get("a", [1.0])),
                       quantization=spec)
    if node_type == "downsample":
        return DownsampleNode(name, int(data.get("factor", 2)),
                              int(data.get("phase", 0)))
    if node_type == "upsample":
        return UpsampleNode(name, int(data.get("factor", 2)))
    raise ValueError(f"unknown node type {node_type!r} for node {name!r}")


def graph_from_dict(data: dict) -> SignalFlowGraph:
    """Rebuild a graph from its dictionary representation."""
    version = data.get("version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {version}")
    graph = SignalFlowGraph(data.get("name", "sfg"))
    for node_data in data.get("nodes", []):
        graph.add_node(_node_from_dict(node_data))
    for edge in data.get("edges", []):
        graph.connect(edge["source"], edge["target"], int(edge.get("port", 0)))
    graph.validate()
    return graph


def load_graph(path) -> SignalFlowGraph:
    """Read a graph from a JSON file."""
    return graph_from_dict(json.loads(Path(path).read_text()))
