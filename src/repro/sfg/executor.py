"""Dual-mode execution of an acyclic signal-flow graph.

The executor evaluates the graph in topological order, keeping one sample
vector per node output.  Two modes are supported:

* ``double`` — the infinite-precision reference (IEEE double precision);
* ``fixed`` — bit-true fixed-point execution in which every node applies
  its :class:`~repro.sfg.nodes.QuantizationSpec`.

The simulation-based accuracy evaluation runs the same graph in both modes
on the same stimulus and measures the output difference; see
:class:`repro.analysis.simulation_method.SimulationEvaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import InputNode


@dataclass
class ExecutionResult:
    """Signals produced by one execution of a graph.

    Attributes
    ----------
    outputs:
        Mapping from output-node name to its signal.
    signals:
        Mapping from every node name to its output signal (only populated
        when the executor is asked to keep intermediate signals).
    """

    outputs: dict[str, np.ndarray]
    signals: dict[str, np.ndarray] = field(default_factory=dict)

    def output(self, name: str | None = None) -> np.ndarray:
        """Return a single output signal.

        Parameters
        ----------
        name:
            Output-node name; may be omitted when the graph has exactly
            one output.
        """
        if name is None:
            if len(self.outputs) != 1:
                raise ValueError(
                    "graph has several outputs; specify which one to read "
                    f"among {sorted(self.outputs)}")
            return next(iter(self.outputs.values()))
        return self.outputs[name]


class SfgExecutor:
    """Executes a validated, acyclic :class:`SignalFlowGraph`."""

    def __init__(self, graph: SignalFlowGraph):
        graph.validate()
        self.graph = graph
        self._order = graph.topological_order()

    def run(self, inputs: dict[str, np.ndarray], mode: str = "double",
            keep_signals: bool = False) -> ExecutionResult:
        """Execute the graph on the given stimulus.

        Parameters
        ----------
        inputs:
            Mapping from input-node name to its sample vector.
        mode:
            ``double`` for the infinite-precision reference or ``fixed``
            for bit-true fixed-point execution.
        keep_signals:
            Whether to retain every intermediate node output in the
            result (useful for debugging and for block-level validation
            tests).
        """
        if mode not in ("double", "fixed"):
            raise ValueError(f"unknown execution mode {mode!r}")
        missing = set(self.graph.input_names()) - set(inputs)
        if missing:
            raise ValueError(f"missing stimulus for input node(s) {sorted(missing)}")

        signals: dict[str, np.ndarray] = {}
        for name in self._order:
            node = self.graph.node(name)
            if isinstance(node, InputNode):
                stimulus = np.asarray(inputs[name], dtype=float)
                if mode == "fixed" and node.quantization.enabled:
                    stimulus = node.quantization.quantizer().quantize(stimulus)
                signals[name] = stimulus
                continue
            incoming = self.graph.predecessors(name)
            node_inputs = [signals[edge.source] for edge in incoming]
            if mode == "double":
                signals[name] = node.simulate(node_inputs)
            else:
                signals[name] = node.simulate_fixed(node_inputs)

        outputs = {name: signals[name] for name in self.graph.output_names()}
        return ExecutionResult(
            outputs=outputs,
            signals=signals if keep_signals else {},
        )

    def run_error(self, inputs: dict[str, np.ndarray],
                  output: str | None = None) -> np.ndarray:
        """Error signal (fixed-point minus double) at one output."""
        reference = self.run(inputs, mode="double").output(output)
        fixed = self.run(inputs, mode="fixed").output(output)
        length = min(len(reference), len(fixed))
        return fixed[:length] - reference[:length]
