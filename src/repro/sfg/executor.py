"""Dual-mode execution of an acyclic signal-flow graph.

The executor evaluates the graph in topological order, keeping one sample
vector per node output.  Two modes are supported:

* ``double`` — the infinite-precision reference (IEEE double precision);
* ``fixed`` — bit-true fixed-point execution in which every node applies
  its :class:`~repro.sfg.nodes.QuantizationSpec`.

Execution runs from a :class:`~repro.sfg.plan.CompiledPlan` — the graph is
validated, ordered and index-resolved once at compile time; the plan is
then run any number of times.  :meth:`SfgExecutor.run_pair` evaluates both
precision modes in one traversal, which is what the simulation-based
accuracy evaluation needs (see
:class:`repro.analysis.simulation_method.SimulationEvaluator`), and a 2-D
``(trials, samples)`` stimulus runs a whole Monte-Carlo batch in one
vectorized pass.

The fixed half is backend-selectable through :mod:`repro.simkernel`:
under the ``codegen`` backend the plan's schedule walk is replaced by a
single lowered op tape (:mod:`repro.simkernel.codegen`) whenever the
plan can be lowered, with bitwise-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sfg.graph import SignalFlowGraph
from repro.sfg.plan import CompiledPlan, compile_plan


@dataclass
class ExecutionResult:
    """Signals produced by one execution of a graph.

    Attributes
    ----------
    outputs:
        Mapping from output-node name to its signal.
    signals:
        Mapping from every node name to its output signal (only populated
        when the executor is asked to keep intermediate signals).
    """

    outputs: dict[str, np.ndarray]
    signals: dict[str, np.ndarray] = field(default_factory=dict)

    def output(self, name: str | None = None) -> np.ndarray:
        """Return a single output signal.

        Parameters
        ----------
        name:
            Output-node name; may be omitted when the graph has exactly
            one output.
        """
        if name is None:
            if len(self.outputs) != 1:
                raise ValueError(
                    "graph has several outputs; specify which one to read "
                    f"among {sorted(self.outputs)}")
            return next(iter(self.outputs.values()))
        return self.outputs[name]


class SfgExecutor:
    """Executes a validated, acyclic :class:`SignalFlowGraph`.

    Accepts either a graph (compiled on construction, with the compiled
    plan cached per graph object) or an already-compiled
    :class:`CompiledPlan`.
    """

    def __init__(self, system: SignalFlowGraph | CompiledPlan):
        self.plan = compile_plan(system)
        self.graph = self.plan.graph

    def run(self, inputs: dict[str, np.ndarray], mode: str = "double",
            keep_signals: bool = False) -> ExecutionResult:
        """Execute the graph on the given stimulus.

        Parameters
        ----------
        inputs:
            Mapping from input-node name to its sample vector; a 2-D array
            of shape ``(trials, samples)`` runs every trial in one
            vectorized batch.
        mode:
            ``double`` for the infinite-precision reference or ``fixed``
            for bit-true fixed-point execution.
        keep_signals:
            Whether to retain every intermediate node output in the
            result (useful for debugging and for block-level validation
            tests).
        """
        return self.plan.run(inputs, mode=mode, keep_signals=keep_signals)

    def run_pair(self, inputs: dict[str, np.ndarray],
                 keep_signals: bool = False
                 ) -> tuple[ExecutionResult, ExecutionResult]:
        """Execute both precision modes in one traversal.

        Returns ``(reference, fixed)`` results computed side by side over
        a single walk of the schedule.
        """
        return self.plan.run_pair(inputs, keep_signals=keep_signals)

    def run_error(self, inputs: dict[str, np.ndarray],
                  output: str | None = None) -> np.ndarray:
        """Error signal (fixed-point minus double) at one output."""
        reference, fixed = self.run_pair(inputs)
        reference = reference.output(output)
        fixed = fixed.output(output)
        if reference.shape != fixed.shape:
            # Both modes run the same schedule on the same stimulus, so a
            # length mismatch can only be a node implementation bug.
            raise ValueError(
                "reference and fixed-point outputs have different shapes: "
                f"{reference.shape} vs {fixed.shape}")
        return fixed - reference
