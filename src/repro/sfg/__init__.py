"""Signal-flow-graph (SFG) infrastructure.

The paper describes systems as signal-flow graphs "composed of boxes
corresponding to sub-systems defined by their impulse response and
delimited by additive quantization noise sources" (Section III-B).  This
subpackage provides:

* :mod:`~repro.sfg.nodes` — the node vocabulary (inputs, outputs, adders,
  constant gains, delays, FIR / IIR / generic LTI blocks, decimators and
  expanders) together with per-node word-length specifications, noise
  generation and noise-propagation rules.
* :mod:`~repro.sfg.graph` — the :class:`SignalFlowGraph` container with
  validation, topological ordering and reachability queries.
* :mod:`~repro.sfg.cycles` — cycle detection and feedback-loop collapsing,
  the first step of the proposed method.
* :mod:`~repro.sfg.plan` — graph compilation: a :class:`CompiledPlan`
  freezes the validated topological schedule (index-based wiring,
  pre-constructed quantizers, precomputed noise sources, memoized
  frequency responses) so every evaluation engine runs it many times
  without re-deriving structure.
* :mod:`~repro.sfg.executor` — dual-mode execution (double-precision
  reference and bit-true fixed point) of a compiled plan, including
  batched (trials × samples) Monte-Carlo runs.
* :mod:`~repro.sfg.builder` — a small fluent API for assembling graphs in
  examples and tests.
"""

from repro.sfg.nodes import (
    AddNode,
    DelayNode,
    DownsampleNode,
    GainNode,
    FirNode,
    IirNode,
    InputNode,
    LtiNode,
    Node,
    OutputNode,
    QuantizationSpec,
    UpsampleNode,
)
from repro.sfg.graph import Edge, SignalFlowGraph, is_multirate
from repro.sfg.cycles import break_feedback_loops, find_cycles
from repro.sfg.plan import CompiledPlan, PlanStep, compile_plan
from repro.sfg.executor import ExecutionResult, SfgExecutor
from repro.sfg.builder import SfgBuilder
from repro.sfg.serialization import (
    assignment_fingerprint,
    canonical_graph_dict,
    graph_fingerprint,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "canonical_graph_dict",
    "graph_fingerprint",
    "assignment_fingerprint",
    "save_graph",
    "load_graph",
    "Node",
    "InputNode",
    "OutputNode",
    "AddNode",
    "GainNode",
    "DelayNode",
    "FirNode",
    "IirNode",
    "LtiNode",
    "DownsampleNode",
    "UpsampleNode",
    "QuantizationSpec",
    "Edge",
    "SignalFlowGraph",
    "is_multirate",
    "find_cycles",
    "break_feedback_loops",
    "CompiledPlan",
    "PlanStep",
    "compile_plan",
    "SfgExecutor",
    "ExecutionResult",
    "SfgBuilder",
]
