"""Cycle detection and feedback-loop collapsing.

The first step of the proposed method (Section III-B) is to "detect cycles
in the SFG and break them to obtain an equivalent acyclic SFG using
classical SFG transformations".  This module implements:

* :func:`find_cycles` — enumeration of the elementary cycles of a graph
  (depth-first search based, sufficient for the modest loop counts of
  signal-processing SFGs);
* :func:`break_feedback_loops` — collapsing of single-adder feedback loops
  (an adder whose output goes through a chain of LTI nodes and returns to
  one of its own inputs) into an equivalent :class:`~repro.sfg.nodes.IirNode`
  whose transfer function is ``F(z) / (1 - s * F(z) G(z))`` where ``F`` is
  the forward chain (identity here, the loop is collapsed around the
  adder), ``G`` the feedback chain and ``s`` the sign of the feedback input.
"""

from __future__ import annotations

from repro.lti.transfer_function import TransferFunction
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import AddNode, IirNode, QuantizationSpec, _LtiMixin


def find_cycles(graph: SignalFlowGraph) -> list[list[str]]:
    """Enumerate elementary cycles of ``graph``.

    Returns a list of cycles, each given as the list of node names in
    traversal order (the first node is repeated implicitly).  Cycles that
    are rotations of one another are reported once.
    """
    cycles: list[list[str]] = []
    seen_signatures: set[tuple[str, ...]] = set()

    def canonical(cycle: list[str]) -> tuple[str, ...]:
        pivot = min(range(len(cycle)), key=lambda i: cycle[i])
        return tuple(cycle[pivot:] + cycle[:pivot])

    def depth_first(start: str, current: str, path: list[str],
                    on_path: set[str]) -> None:
        for edge in graph.successors(current):
            nxt = edge.target
            if nxt == start:
                signature = canonical(path)
                if signature not in seen_signatures:
                    seen_signatures.add(signature)
                    cycles.append(list(signature))
            elif nxt not in on_path and nxt >= start:
                # Only explore nodes not lexicographically before the start
                # node to avoid re-finding the same cycle from every
                # member; this keeps the search tractable.
                path.append(nxt)
                on_path.add(nxt)
                depth_first(start, nxt, path, on_path)
                on_path.remove(nxt)
                path.pop()

    for name in sorted(graph.nodes):
        depth_first(name, name, [name], {name})
    return cycles


def _chain_transfer_function(graph: SignalFlowGraph,
                             chain: list[str]) -> TransferFunction:
    """Compose the transfer functions of a chain of single-input LTI nodes."""
    tf = TransferFunction.identity()
    for name in chain:
        node = graph.node(name)
        if not isinstance(node, _LtiMixin):
            raise ValueError(
                f"cannot collapse feedback through non-LTI node {name!r}")
        tf = tf.cascade(node.transfer_function())
    return tf


def break_feedback_loops(graph: SignalFlowGraph) -> SignalFlowGraph:
    """Collapse single-adder feedback loops into equivalent IIR nodes.

    The transformation looks for cycles of the form::

        adder -> lti_1 -> lti_2 -> ... -> lti_k -> (back to adder)

    where the adder has exactly two inputs: one external and one coming
    from the loop.  The whole loop is replaced by a single
    :class:`~repro.sfg.nodes.IirNode` with transfer function
    ``1 / (1 - s * G(z))`` followed by the forward chain ``G``'s
    re-insertion is not needed because the loop output is taken at the
    adder; consumers previously fed by intermediate loop nodes must tap
    the collapsed node instead (a limitation documented in the tests).

    The input graph is modified in place and also returned, so the call
    can be chained.
    """
    while True:
        cycles = find_cycles(graph)
        if not cycles:
            return graph
        collapsed_any = False
        for cycle in cycles:
            adders = [name for name in cycle
                      if isinstance(graph.node(name), AddNode)]
            if len(adders) != 1:
                continue
            adder_name = adders[0]
            adder = graph.node(adder_name)
            # Rotate the cycle so it starts at the adder.
            start = cycle.index(adder_name)
            ordered = cycle[start:] + cycle[:start]
            loop_chain = ordered[1:]
            # Identify which adder input the loop drives and the external one.
            loop_source = ordered[-1] if loop_chain else adder_name
            incoming = graph.predecessors(adder_name)
            loop_edges = [e for e in incoming if e.source == loop_source]
            external_edges = [e for e in incoming if e.source != loop_source]
            if len(loop_edges) != 1 or len(external_edges) != 1:
                continue
            feedback_sign = adder.signs[loop_edges[0].port]
            external_edge = external_edges[0]
            external_sign = adder.signs[external_edge.port]

            try:
                loop_tf = _chain_transfer_function(graph, loop_chain)
            except ValueError:
                continue

            # Closed-loop transfer function from the external input to the
            # adder output: external_sign / (1 - feedback_sign * G(z)).
            open_loop = loop_tf.scaled(-feedback_sign)
            closed = TransferFunction.gain(external_sign).feedback(open_loop) \
                if False else _closed_loop(external_sign, feedback_sign, loop_tf)

            replacement = IirNode(
                name=f"{adder_name}__loop",
                b=closed.b,
                a=closed.a,
                quantization=adder.quantization
                if adder.quantization.enabled else QuantizationSpec(None),
            )

            consumers = graph.successors(adder_name)
            source_of_external = external_edge.source
            # Remove the loop nodes and the adder, then splice in the
            # replacement node.
            for name in [adder_name] + loop_chain:
                graph.remove_node(name)
            graph.add_node(replacement)
            graph.connect(source_of_external, replacement.name, 0)
            for edge in consumers:
                if edge.target in graph.nodes:
                    graph.connect(replacement.name, edge.target, edge.port)
            collapsed_any = True
            break
        if not collapsed_any:
            raise ValueError(
                "graph contains cycles that are not single-adder LTI feedback "
                "loops; they cannot be collapsed automatically")


def _closed_loop(external_sign: float, feedback_sign: float,
                 loop_tf: TransferFunction) -> TransferFunction:
    """Transfer function ``external_sign / (1 - feedback_sign * G(z))``."""
    import numpy as np

    numerator = np.atleast_1d(np.array([external_sign], dtype=float))
    # Denominator: A(z) = loop_a - feedback_sign * loop_b (aligned).
    loop_b = loop_tf.b
    loop_a = loop_tf.a
    length = max(len(loop_a), len(loop_b))
    a = np.zeros(length)
    a[:len(loop_a)] += loop_a
    a[:len(loop_b)] -= feedback_sign * loop_b
    b = np.convolve(numerator, loop_a)
    return TransferFunction(b, a)
