"""A small fluent helper for assembling signal-flow graphs.

Examples and tests build many small graphs; the builder removes the
boilerplate of creating nodes and wiring ports by hand::

    builder = SfgBuilder("notch")
    x = builder.input("x", fractional_bits=12)
    filtered = builder.fir("h", taps, x, fractional_bits=12)
    y = builder.output("y", filtered)
    graph = builder.build()
"""

from __future__ import annotations

from repro.fixedpoint.quantizer import RoundingMode
from repro.lti.transfer_function import TransferFunction
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import (
    AddNode,
    DelayNode,
    DownsampleNode,
    FirNode,
    GainNode,
    IirNode,
    InputNode,
    LtiNode,
    OutputNode,
    QuantizationSpec,
    UpsampleNode,
)


def _spec(fractional_bits, rounding, coefficient_fractional_bits=None
          ) -> QuantizationSpec:
    return QuantizationSpec(
        fractional_bits=fractional_bits,
        rounding=RoundingMode(rounding),
        coefficient_fractional_bits=coefficient_fractional_bits,
    )


class SfgBuilder:
    """Fluent builder producing a :class:`SignalFlowGraph`."""

    def __init__(self, name: str = "sfg"):
        self.graph = SignalFlowGraph(name)

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def input(self, name: str, fractional_bits: int | None = None,
              rounding: str | RoundingMode = RoundingMode.ROUND) -> str:
        """Add an input node; returns its name."""
        self.graph.add_node(InputNode(name, _spec(fractional_bits, rounding)))
        return name

    def output(self, name: str, source: str) -> str:
        """Add an output node fed by ``source``; returns its name."""
        self.graph.add_node(OutputNode(name))
        self.graph.connect(source, name, 0)
        return name

    # ------------------------------------------------------------------
    # Arithmetic / LTI nodes
    # ------------------------------------------------------------------
    def add(self, name: str, sources: list[str],
            signs: list[float] | None = None,
            fractional_bits: int | None = None,
            rounding: str | RoundingMode = RoundingMode.ROUND) -> str:
        """Add an adder summing ``sources``; returns its name."""
        node = AddNode(name, num_inputs=len(sources), signs=signs,
                       quantization=_spec(fractional_bits, rounding))
        self.graph.add_node(node)
        for port, source in enumerate(sources):
            self.graph.connect(source, name, port)
        return name

    def gain(self, name: str, value: float, source: str,
             fractional_bits: int | None = None,
             rounding: str | RoundingMode = RoundingMode.ROUND,
             coefficient_fractional_bits: int | None = None) -> str:
        """Add a constant-gain node; returns its name."""
        node = GainNode(name, value,
                        quantization=_spec(fractional_bits, rounding,
                                           coefficient_fractional_bits))
        self.graph.add_node(node)
        self.graph.connect(source, name, 0)
        return name

    def delay(self, name: str, source: str, samples: int = 1) -> str:
        """Add a pure-delay node; returns its name."""
        self.graph.add_node(DelayNode(name, samples))
        self.graph.connect(source, name, 0)
        return name

    def fir(self, name: str, taps, source: str,
            fractional_bits: int | None = None,
            rounding: str | RoundingMode = RoundingMode.ROUND,
            coefficient_fractional_bits: int | None = None) -> str:
        """Add an FIR filter node; returns its name."""
        node = FirNode(name, taps,
                       quantization=_spec(fractional_bits, rounding,
                                          coefficient_fractional_bits))
        self.graph.add_node(node)
        self.graph.connect(source, name, 0)
        return name

    def iir(self, name: str, b, a, source: str,
            fractional_bits: int | None = None,
            rounding: str | RoundingMode = RoundingMode.ROUND,
            coefficient_fractional_bits: int | None = None) -> str:
        """Add an IIR filter node; returns its name."""
        node = IirNode(name, b, a,
                       quantization=_spec(fractional_bits, rounding,
                                          coefficient_fractional_bits))
        self.graph.add_node(node)
        self.graph.connect(source, name, 0)
        return name

    def lti(self, name: str, transfer_function: TransferFunction, source: str,
            fractional_bits: int | None = None,
            rounding: str | RoundingMode = RoundingMode.ROUND) -> str:
        """Add a generic LTI node; returns its name."""
        node = LtiNode(name, transfer_function,
                       quantization=_spec(fractional_bits, rounding))
        self.graph.add_node(node)
        self.graph.connect(source, name, 0)
        return name

    # ------------------------------------------------------------------
    # Multirate nodes
    # ------------------------------------------------------------------
    def downsample(self, name: str, source: str, factor: int = 2,
                   phase: int = 0) -> str:
        """Add a decimator node; returns its name."""
        self.graph.add_node(DownsampleNode(name, factor, phase))
        self.graph.connect(source, name, 0)
        return name

    def upsample(self, name: str, source: str, factor: int = 2) -> str:
        """Add an expander node; returns its name."""
        self.graph.add_node(UpsampleNode(name, factor))
        self.graph.connect(source, name, 0)
        return name

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self) -> SignalFlowGraph:
        """Validate and return the graph."""
        self.graph.validate()
        return self.graph
