"""Compiled execution plans for signal-flow graphs.

Every evaluation path of the library — bit-true simulation, the three
analytical noise walks and the word-length optimizer's inner loop — needs
the same structural information about a :class:`SignalFlowGraph`: that the
graph is valid, its topological order, the predecessor wiring of every
node, the set of nodes that generate quantization noise and the frequency
responses of the LTI blocks.  The graph itself is a mutable, name-keyed
editing structure; recomputing all of that on every evaluation dominates
the cost of the analytical methods, which defeats the paper's central
claim that PSD-based estimation is orders of magnitude faster than
simulation.

:class:`CompiledPlan` splits the two concerns (the same editor-graph /
command-buffer split used by node-graph engines): the graph is compiled
*once* into a frozen, index-based schedule which is then run any number of
times.

* validation and topological ordering happen at compile time;
* predecessor edges are resolved to integer signal slots, not names;
* per-node data-path quantizers are pre-constructed;
* the noise-generating nodes and their moments are precomputed;
* per-node frequency responses (block responses and IIR noise-shaping
  responses) are memoized per ``(node, n_bins)``, keyed by the effective
  coefficient precision so that re-quantizing the data path never
  invalidates them.

Re-quantization — the word-length optimizer's inner loop — is supported in
place through :meth:`CompiledPlan.requantize`; in-place *coefficient*
edits (assigning to ``GainNode.gain`` and the like) are detected by
:meth:`CompiledPlan.refresh`, which then drops the *edited steps'*
memoized responses and stamps those steps with a new plan epoch so the
pull-based analytical engines (:mod:`repro.analysis._engine`) recompute
only the dirty downstream cone instead of re-walking the whole graph;
any *structural* change to the graph (adding / removing nodes or edges,
swapping node objects) requires a new plan, which :func:`compile_plan`
detects automatically.

On top of single-configuration reuse, :class:`ConfigStack` resolves a
whole *stack* of word-length assignments against one plan — per-step
noise moments with a leading config axis, responses shared per effective
coefficient precision — which is what the configuration-batched
analytical walks (``evaluate_*_batch``) consume.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.fixedpoint.noise_model import NoiseStats, quantization_noise_stats
from repro.lti.transfer_function import TransferFunction
from repro.obs import metric_inc, span
from repro.psd.spectrum import DiscretePsd
from repro.psd.propagation import TrackedSpectrum
from repro.sfg.graph import SignalFlowGraph
from repro.sfg.nodes import (
    AddNode,
    DelayNode,
    DownsampleNode,
    FirNode,
    GainNode,
    IirNode,
    InputNode,
    LtiNode,
    Node,
    UpsampleNode,
    _LtiMixin,
)


def parse_edge_key(key: str) -> tuple[str, str]:
    """Split a ``"source->target"`` edge key into its node names."""
    source, separator, target = key.partition("->")
    if not separator or not source or not target:
        raise ValueError(
            f"{key!r} is neither a node name nor a 'source->target' edge "
            "key")
    return source, target


class EdgeTap:
    """A per-fanout-branch re-quantizer on one edge of the schedule.

    Materialized from the *source* node's
    :attr:`~repro.sfg.nodes.QuantizationSpec.edge_fractional_bits` entry
    toward this step, and stored on the *target* step (aligned with its
    predecessor ports) because that is where both the fixed-point walk
    and the analytical engines consume the tapped value.

    Attributes
    ----------
    key:
        The ``"source->target"`` assignment key of this tap.
    bits:
        Fractional word length of the tap.
    rounding, input_bits:
        Rounding mode and input-grid precision inherited from the source
        spec (``input_bits`` is the source's own output word length, or
        ``None`` when the source does not quantize).
    quantizer:
        Pre-constructed quantizer applied to the tapped value in fixed
        point.
    noise:
        PQN moments the tap injects, or ``None`` when the tap is a no-op
        (at least as fine as the source grid — then the quantizer is
        numerically the identity and the noise is exactly zero).
    """

    __slots__ = ("key", "bits", "rounding", "input_bits", "quantizer",
                 "noise")

    def __init__(self, key: str, bits: int, rounding, input_bits,
                 quantizer, noise: NoiseStats | None):
        self.key = key
        self.bits = bits
        self.rounding = rounding
        self.input_bits = input_bits
        self.quantizer = quantizer
        self.noise = noise

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeTap({self.key!r}, bits={self.bits})"


def _taps_signature(taps) -> tuple | None:
    if taps is None:
        return None
    return tuple(
        None if tap is None else
        (tap.bits, tap.rounding, tap.input_bits,
         None if tap.noise is None else (tap.noise.mean, tap.noise.variance))
        for tap in taps)


class PlanStep:
    """One node of the compiled schedule.

    Attributes
    ----------
    index:
        Position of the step (and of its output signal slot) in the
        schedule.
    name:
        Node name (kept for result dictionaries and error messages).
    node:
        The live node object; its behavioural methods are still the single
        source of truth for simulation and propagation semantics.
    predecessors:
        Indices of the steps driving this node's input ports, in port
        order.
    is_source:
        Whether the node has no predecessors (inputs and constant sources).
    quantizer:
        Pre-constructed data-path quantizer (``None`` when the node does
        not quantize).
    noise:
        Moments of the node's own quantization-noise source, or ``None``
        when the node is noiseless under its current specification.
    edge_taps:
        ``None`` when no incoming edge is tapped; otherwise a tuple
        aligned with :attr:`predecessors` holding an :class:`EdgeTap`
        (or ``None``) per input port.
    """

    __slots__ = ("index", "name", "node", "predecessors", "is_source",
                 "quantizer", "noise", "edge_taps")

    def __init__(self, index: int, name: str, node: Node,
                 predecessors: tuple[int, ...]):
        self.index = index
        self.name = name
        self.node = node
        self.predecessors = predecessors
        self.is_source = isinstance(node, InputNode) or node.num_inputs == 0
        self.quantizer = None
        self.noise: NoiseStats | None = None
        self.edge_taps: tuple | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanStep({self.index}, {self.name!r})"


class CompiledPlan:
    """A frozen, index-based execution schedule for one graph structure.

    Parameters
    ----------
    graph:
        Acyclic :class:`SignalFlowGraph`; validated once, here.

    Notes
    -----
    The plan snapshots the graph *structure*; quantization specifications
    remain live and can be updated through :meth:`requantize` (or by
    mutating the node specs and calling :meth:`refresh`).  Prefer building
    plans through :func:`compile_plan`, which caches one plan per graph and
    transparently refreshes it when only quantization changed.
    """

    def __init__(self, graph: SignalFlowGraph):
        graph.validate()
        self.graph = graph
        order = graph.topological_order()
        index_of = {name: i for i, name in enumerate(order)}
        steps: list[PlanStep] = []
        for name in order:
            predecessors = tuple(index_of[edge.source]
                                 for edge in graph.predecessors(name))
            steps.append(PlanStep(len(steps), name, graph.node(name),
                                  predecessors))
        self.steps: tuple[PlanStep, ...] = tuple(steps)
        self.index_of = index_of
        self.input_names: tuple[str, ...] = tuple(graph.input_names())
        self.output_names: tuple[str, ...] = tuple(graph.output_names())
        self.output_indices: tuple[int, ...] = tuple(
            index_of[name] for name in self.output_names)
        # Downstream-cone index: integer successor adjacency, the dual of
        # each step's predecessor tuple.  The incremental engines use it to
        # bound what an edit can influence (everything reachable from the
        # dirty steps); like the schedule itself it is frozen at compile
        # time because structural edits always produce a new plan.
        successors: list[set[int]] = [set() for _ in steps]
        for step in steps:
            for predecessor in step.predecessors:
                successors[predecessor].add(step.index)
        self._successors: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in successors)
        # Edge index for per-edge word lengths: (source, target) -> the
        # (target step, input port) slots that pair connects.  A pair
        # wired on several ports makes an edge key ambiguous, which
        # _resolve_edge rejects.
        edge_index: dict[tuple[str, str], list[tuple[int, int]]] = {}
        for name in order:
            for edge in graph.predecessors(name):
                edge_index.setdefault((edge.source, name), []).append(
                    (index_of[name], edge.port))
        self._edge_index = edge_index
        self._any_edge_taps = False
        # Signatures iterate graph.nodes in insertion order while steps are
        # topologically ordered; this maps signature position -> step index.
        self._node_order: tuple[int, ...] = tuple(
            index_of[name] for name in graph.nodes)
        # Dirty tracking for the pull-based evaluation engines: the plan
        # epoch counts refreshes that changed something, and each step
        # records the epoch at which its *local evaluation signature*
        # (coefficients, effective coefficient precision, own noise
        # moments) last changed.  Consumers snapshot the epoch and later
        # ask steps_dirty_since() for the steps to re-pull.
        self._epoch = 0
        self._step_epochs = np.zeros(len(steps), dtype=np.int64)
        self._local_signatures: list[tuple | None] = [None] * len(steps)
        self._structure_signature = structure_signature(graph)
        self._quantization_signature: tuple = ()
        self._coefficient_signature: tuple = ()
        # Frequency responses and impulse-response scalars depend only on
        # the node coefficients and their effective precision, so cache
        # entries are keyed by that precision and survive re-quantization;
        # coefficient changes are detected by refresh(), which then drops
        # the caches wholesale.
        self._response_cache: dict[tuple, np.ndarray] = {}
        self._tf_cache: dict[tuple, TransferFunction] = {}
        self._gain_cache: dict[tuple, tuple[float, float]] = {}
        # Lowered op tape for the codegen backend.  The tape structure is
        # built lazily (first fixed run under the codegen backend) and
        # lives as long as the plan — structural edits always produce a
        # new plan, so only its *constants* ever go stale, which refresh()
        # tracks through _tape_bound.  Plans that cannot be lowered record
        # the reason once and keep using the per-node schedule walk.
        self._tape = None
        self._tape_bound = False
        self._tape_error: str | None = None
        self.noise_steps: tuple[PlanStep, ...] = ()
        self.refresh()

    # ------------------------------------------------------------------
    # Quantization state
    # ------------------------------------------------------------------
    def refresh(self) -> bool:
        """Re-read the quantization specs and coefficients of every node.

        Dirty marking is per step: quantizers and noise moments are
        rebuilt only for the steps whose spec or coefficients actually
        changed since the last refresh, an in-place coefficient change
        (e.g. assigning to ``GainNode.gain``) additionally drops that
        step's memoized transfer functions and frequency responses (every
        cache key starts with the step index, so eviction is a key
        filter, not a wholesale clear), and the plan epoch is bumped so
        pull-based consumers (:class:`~repro.analysis._engine.NoiseMemo`)
        can recompute just the downstream cone of the dirty steps.
        Returns whether anything was rebuilt.
        """
        num_steps = len(self.steps)
        changed: set[int] = set()
        coefficients = coefficient_signature(self.graph)
        if coefficients != self._coefficient_signature:
            previous = self._coefficient_signature
            if len(previous) == len(coefficients) == num_steps:
                edited = {self._node_order[i]
                          for i, (was, now)
                          in enumerate(zip(previous, coefficients))
                          if was != now}
            else:
                edited = set(range(num_steps))
            self._coefficient_signature = coefficients
            for cache in (self._tf_cache, self._response_cache,
                          self._gain_cache):
                for key in [key for key in cache if key[0] in edited]:
                    del cache[key]
            # Generated noise can depend on coefficients too (e.g. the
            # frequency-domain FIR node), so the edited steps join the
            # quantizer/noise rebuild below.
            changed |= edited
        signature = quantization_signature(self.graph)
        if signature != self._quantization_signature:
            previous = self._quantization_signature
            if len(previous) == len(signature) == num_steps:
                for i, (was, now) in enumerate(zip(previous, signature)):
                    if was == now:
                        continue
                    index = self._node_order[i]
                    changed.add(index)
                    # A fanout tap's noise lives on the *target* step but
                    # depends on the source's word length, rounding and
                    # edge entries (signature components 0, 1 and 4): a
                    # change to any of them marks the tapped targets, so
                    # a one-edge edit dirties exactly the target's cone
                    # while the source step's own value stays cached.
                    if (was[0], was[1], was[4]) != (now[0], now[1], now[4]):
                        source = self.steps[index].name
                        targets = ({t for t, _ in was[4]}
                                   | {t for t, _ in now[4]})
                        for target in targets:
                            changed.add(self._resolve_edge(source,
                                                           target)[0])
            else:
                changed = set(range(num_steps))
            self._quantization_signature = signature
        if not changed:
            return False
        stamped = []
        for index in sorted(changed):
            step = self.steps[index]
            spec = step.node.quantization
            step.quantizer = spec.quantizer() if spec.enabled else None
            own = step.node.generated_noise()
            step.noise = own if (own.variance > 0.0
                                 or own.mean != 0.0) else None
            step.edge_taps = self._build_edge_taps(step)
            # The local evaluation signature is what a step contributes to
            # an analytical walk beyond its inputs: coefficient state,
            # effective coefficient precision, own noise moments, and the
            # taps on its incoming edges.  Spec edits that leave it
            # untouched (e.g. a rounding-mode change on a disabled
            # quantizer, or an integer-width change — overflow is NONE,
            # so values never change) rebuild the quantizer but do not
            # dirty the analytical caches.
            local = (_node_coefficient_state(step.node),
                     self._coeff_key(step),
                     None if step.noise is None
                     else (step.noise.mean, step.noise.variance),
                     _taps_signature(step.edge_taps))
            if local != self._local_signatures[index]:
                self._local_signatures[index] = local
                stamped.append(index)
        self.noise_steps = tuple(step for step in self.steps
                                 if step.noise is not None)
        self._any_edge_taps = any(step.edge_taps is not None
                                  for step in self.steps)
        if stamped:
            self._epoch += 1
            self._step_epochs[stamped] = self._epoch
        # The codegen tape closes over quantized coefficients and steps:
        # mark its constants stale so the next fixed run rebinds them (the
        # tape *structure* is never rebuilt — satisfying the requantize
        # hot loop).
        self._tape_bound = False
        return True

    def requantize(self, assignment: dict[str, int | None],
                   allow_enable: bool = False) -> None:
        """Update fractional word lengths in place and refresh the plan.

        ``assignment`` maps node names — or ``"source->target"`` edge keys
        — to their new fractional bit counts (``None`` disables the
        node's quantizer / removes the fanout tap).  This is the
        sanctioned mutation path of the word-length optimizer's inner
        loop: the schedule and the frequency-response cache are reused
        across search iterations.

        Assigning bits to a node whose spec is disabled
        (``fractional_bits=None``) would silently *enable* quantization
        with a default ROUND spec; that is rejected with a ValueError
        naming the node unless ``allow_enable=True`` (the batched
        evaluators opt in because their configuration stacks legitimately
        toggle quantization per config).
        """
        with span("plan.requantize", nodes=len(assignment)):
            for name, bits in assignment.items():
                if name in self.graph.nodes:
                    node = self.graph.node(name)
                    spec = node.quantization
                    if (bits is not None and not spec.enabled
                            and not allow_enable):
                        raise ValueError(
                            f"node {name!r} is not quantized; assigning "
                            f"{bits} fractional bits would silently enable "
                            "quantization with a default ROUND spec — pass "
                            "allow_enable=True to opt in")
                    node.quantization = spec.with_fractional_bits(bits)
                else:
                    source, target = parse_edge_key(name)
                    self._resolve_edge(source, target)
                    node = self.graph.node(source)
                    node.quantization = \
                        node.quantization.with_edge_fractional_bits(target,
                                                                    bits)
            self.refresh()

    def _resolve_edge(self, source: str, target: str) -> tuple[int, int]:
        """(target step index, input port) of the unique ``source->target``
        edge; rejects unknown and ambiguous (multi-port) pairs."""
        slots = self._edge_index.get((source, target))
        if not slots:
            raise ValueError(
                f"no edge {source!r} -> {target!r} in graph "
                f"{self.graph.name!r}")
        if len(slots) > 1:
            raise ValueError(
                f"edge {source!r} -> {target!r} is ambiguous: the pair is "
                f"wired on ports {sorted(port for _, port in slots)}; "
                "per-edge word lengths need a unique edge per node pair")
        return slots[0]

    def _build_edge_taps(self, step: PlanStep) -> tuple | None:
        """Incoming :class:`EdgeTap` tuple of one step (``None`` if none)."""
        taps = None
        for port, predecessor in enumerate(step.predecessors):
            source_step = self.steps[predecessor]
            spec = source_step.node.quantization
            if not spec.edge_fractional_bits:
                continue
            bits = spec.edge_bits_for(step.name)
            if bits is None:
                continue
            self._resolve_edge(source_step.name, step.name)
            if taps is None:
                taps = [None] * len(step.predecessors)
            stats = spec.edge_noise_stats(bits)
            taps[port] = EdgeTap(
                key=f"{source_step.name}->{step.name}",
                bits=bits,
                rounding=spec.rounding,
                input_bits=spec.fractional_bits,
                quantizer=spec.edge_quantizer(bits),
                noise=stats if (stats.variance > 0.0
                                or stats.mean != 0.0) else None,
            )
        return tuple(taps) if taps is not None else None

    def active_edge_taps(self) -> list[tuple[PlanStep, int, EdgeTap]]:
        """``(target step, port, tap)`` triples of noise-injecting taps."""
        result = []
        for step in self.steps:
            if step.edge_taps is None:
                continue
            for port, tap in enumerate(step.edge_taps):
                if tap is not None and tap.noise is not None:
                    result.append((step, port, tap))
        return result

    @contextmanager
    def preserve_quantization(self):
        """Context manager restoring every node's spec on exit.

        Used by the batched evaluations that temporarily requantize the
        plan (group representatives, per-config fixed-point runs) and must
        leave the caller's quantization state untouched.
        """
        saved = {name: node.quantization
                 for name, node in self.graph.nodes.items()}
        try:
            yield self
        finally:
            for name, spec in saved.items():
                self.graph.node(name).quantization = spec
            self.refresh()

    # ------------------------------------------------------------------
    # Dirty tracking (pull-based consumers)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic counter of refreshes that changed some step.

        Pull-based consumers snapshot this after syncing and pass the
        snapshot to :meth:`steps_dirty_since` on the next pull.
        """
        return self._epoch

    def steps_dirty_since(self, epoch: int) -> np.ndarray:
        """Indices of steps whose local signature changed after ``epoch``.

        Call :meth:`refresh` first (or go through a path that does, such
        as :meth:`requantize`) so pending in-place spec or coefficient
        mutations are folded into the epoch counters.
        """
        return np.nonzero(self._step_epochs > epoch)[0]

    def downstream_cone(self, indices) -> list[int]:
        """Step indices reachable from ``indices``, seeds included.

        The result is sorted, and therefore in topological order: it is
        exactly the re-evaluation schedule for an edit at the seed steps,
        everything outside it provably unaffected.
        """
        seen = {int(index) for index in indices}
        frontier = list(seen)
        while frontier:
            for successor in self._successors[frontier.pop()]:
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return sorted(seen)

    def coefficient_fingerprint(self) -> tuple:
        """Hashable fingerprint of the plan's transfer behaviour.

        Covers everything the symbolic transfer functions and
        double-precision reference runs depend on: the coefficient state
        of every node plus its effective coefficient precision.  Two plan
        states with equal fingerprints have bit-identical path functions
        and reference simulations — the cache key of the flat method's
        path-function memo and the simulation method's reference-run memo.
        Call :meth:`refresh` first so pending mutations are folded in.
        """
        return (self._coefficient_signature,
                tuple(self._coeff_key(step) for step in self.steps))

    def _coeff_key(self, step: PlanStep):
        spec = step.node.quantization
        return spec.coeff_bits if spec.enabled else None

    def coeff_key_for_bits(self, step: PlanStep, bits: int | None):
        """Effective coefficient precision for a hypothetical word length.

        Mirrors :attr:`QuantizationSpec.coeff_bits` after
        ``with_fractional_bits(bits)``: ``None`` when quantization would be
        disabled, the pinned ``coefficient_fractional_bits`` when set, the
        data precision otherwise.
        """
        if bits is None:
            return None
        spec = step.node.quantization
        if spec.coefficient_fractional_bits is not None:
            return spec.coefficient_fractional_bits
        return bits

    def _compute_with_bits(self, step: PlanStep, bits: int | None, compute):
        """Evaluate ``compute(node)`` as if the step had ``bits`` data bits.

        The node's spec is swapped for the duration of the call and always
        restored, so the plan's signatures stay consistent.  When ``bits``
        already is the live word length the node is used as-is.
        """
        node = step.node
        spec = node.quantization
        if spec.fractional_bits == bits:
            return compute(node)
        node.quantization = spec.with_fractional_bits(bits)
        try:
            return compute(node)
        finally:
            node.quantization = spec

    # ------------------------------------------------------------------
    # Memoized per-node transfer functions / responses
    # ------------------------------------------------------------------
    def block_tf_for_bits(self, step: PlanStep,
                          bits: int | None) -> TransferFunction:
        """Effective transfer function at a hypothetical word length."""
        key = (step.index, "block", self.coeff_key_for_bits(step, bits))
        tf = self._tf_cache.get(key)
        if tf is None:
            tf = self._compute_with_bits(
                step, bits, lambda node: node._effective_transfer_function())
            self._tf_cache[key] = tf
        return tf

    def shaping_tf_for_bits(self, step: PlanStep,
                            bits: int | None) -> TransferFunction:
        """Noise-shaping function at a hypothetical word length."""
        key = (step.index, "shaping", self.coeff_key_for_bits(step, bits))
        tf = self._tf_cache.get(key)
        if tf is None:
            tf = self._compute_with_bits(
                step, bits, lambda node: node.noise_shaping_function())
            self._tf_cache[key] = tf
        return tf

    def block_tf(self, step: PlanStep) -> TransferFunction:
        """Effective (coefficient-quantized) transfer function of a block."""
        return self.block_tf_for_bits(step,
                                      step.node.quantization.fractional_bits)

    def shaping_tf(self, step: PlanStep) -> TransferFunction:
        """Noise-shaping function of an IIR block's internal quantizer."""
        return self.shaping_tf_for_bits(step,
                                        step.node.quantization.fractional_bits)

    def block_response_for_bits(self, step: PlanStep, bits: int | None,
                                n_bins: int) -> np.ndarray:
        """Block frequency response at a hypothetical word length."""
        key = (step.index, "block", self.coeff_key_for_bits(step, bits),
               n_bins)
        response = self._response_cache.get(key)
        if response is None:
            response = self.block_tf_for_bits(step, bits).frequency_response(
                n_bins)
            self._response_cache[key] = response
        return response

    def shaping_response_for_bits(self, step: PlanStep, bits: int | None,
                                  n_bins: int) -> np.ndarray:
        """Noise-shaping response at a hypothetical word length."""
        key = (step.index, "shaping", self.coeff_key_for_bits(step, bits),
               n_bins)
        response = self._response_cache.get(key)
        if response is None:
            response = self.shaping_tf_for_bits(step, bits).frequency_response(
                n_bins)
            self._response_cache[key] = response
        return response

    def block_response(self, step: PlanStep, n_bins: int) -> np.ndarray:
        """Complex frequency response of a block on ``n_bins`` bins."""
        return self.block_response_for_bits(
            step, step.node.quantization.fractional_bits, n_bins)

    def shaping_response(self, step: PlanStep, n_bins: int) -> np.ndarray:
        """Noise-shaping frequency response of an IIR block."""
        return self.shaping_response_for_bits(
            step, step.node.quantization.fractional_bits, n_bins)

    def block_gains_for_bits(self, step: PlanStep,
                             bits: int | None) -> tuple[float, float]:
        """``(energy, coefficient_sum)`` at a hypothetical word length."""
        key = (step.index, "block", self.coeff_key_for_bits(step, bits))
        gains = self._gain_cache.get(key)
        if gains is None:
            tf = self.block_tf_for_bits(step, bits)
            gains = (tf.energy(), tf.coefficient_sum())
            self._gain_cache[key] = gains
        return gains

    def shaping_gains_for_bits(self, step: PlanStep,
                               bits: int | None) -> tuple[float, float]:
        """Noise-shaping ``(energy, coefficient_sum)`` at a word length."""
        key = (step.index, "shaping", self.coeff_key_for_bits(step, bits))
        gains = self._gain_cache.get(key)
        if gains is None:
            tf = self.shaping_tf_for_bits(step, bits)
            gains = (tf.energy(), tf.coefficient_sum())
            self._gain_cache[key] = gains
        return gains

    def block_gains(self, step: PlanStep) -> tuple[float, float]:
        """``(energy, coefficient_sum)`` of a block's transfer function."""
        return self.block_gains_for_bits(step,
                                         step.node.quantization.fractional_bits)

    def shaping_gains(self, step: PlanStep) -> tuple[float, float]:
        """``(energy, coefficient_sum)`` of an IIR noise-shaping function."""
        return self.shaping_gains_for_bits(
            step, step.node.quantization.fractional_bits)

    def noise_for_bits(self, step: PlanStep, bits: int | None) -> NoiseStats:
        """Moments the step would generate with ``bits`` fractional bits."""
        if bits == step.node.quantization.fractional_bits:
            return step.noise if step.noise is not None else NoiseStats(0.0, 0.0)
        return self._compute_with_bits(
            step, bits, lambda node: node.generated_noise())

    def config_stack(self, assignments) -> "ConfigStack":
        """Resolve a stack of word-length assignments against this plan.

        ``assignments`` is a sequence of ``{node name: fractional bits}``
        mappings (``None`` disables quantization; unnamed nodes keep their
        current word length).  The returned :class:`ConfigStack` is what
        the batched analytical walks consume.
        """
        return ConfigStack(self, assignments)

    # ------------------------------------------------------------------
    # Own-noise injection helpers (used by the analytical engines)
    # ------------------------------------------------------------------
    def shaped_noise_stats(self, step: PlanStep) -> NoiseStats:
        """Moments of a step's own noise as seen at the node output."""
        stats = step.noise
        if isinstance(step.node, IirNode):
            energy, dc = self.shaping_gains(step)
            return NoiseStats(mean=stats.mean * dc,
                              variance=stats.variance * energy)
        return stats

    def shaped_noise_psd(self, step: PlanStep, n_bins: int) -> DiscretePsd:
        """PSD of a step's own noise as seen at the node output."""
        psd = DiscretePsd.white(step.noise, n_bins)
        if isinstance(step.node, IirNode):
            psd = psd.filtered(self.shaping_response(step, n_bins))
        return psd

    def shaped_noise_tracked(self, step: PlanStep,
                             n_bins: int) -> TrackedSpectrum:
        """Tracked spectrum of a step's own noise at the node output."""
        tracked = TrackedSpectrum.from_source(step.name, step.noise, n_bins)
        if isinstance(step.node, IirNode):
            tracked = tracked.filtered(self.shaping_response(step, n_bins))
        return tracked

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def resolve_output(self, output: str | None) -> str:
        """Name of the output node to read (validated)."""
        if output is not None:
            if output not in self.output_names:
                raise ValueError(
                    f"{output!r} is not an output node of the graph")
            return output
        if len(self.output_names) != 1:
            raise ValueError(
                f"graph has {len(self.output_names)} outputs; specify which "
                "one to evaluate")
        return self.output_names[0]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _stimulus_slots(self, inputs: dict) -> list:
        missing = set(self.input_names) - set(inputs)
        if missing:
            raise ValueError(
                f"missing stimulus for input node(s) {sorted(missing)}")
        slots = [np.asarray(inputs[name], dtype=float)
                 for name in self.input_names]
        # Batched stimuli must agree on the trial axes: a 1-D stimulus is
        # broadcast to every trial, but two stacked stimuli with
        # different leading shapes would silently mis-pair trials inside
        # the vectorized nodes.
        leading = {slot.shape[:-1] for slot in slots if slot.ndim > 1}
        if len(leading) > 1:
            raise ValueError(
                "batched stimuli disagree on the trial axes: "
                f"{sorted(leading)}")
        return slots

    @staticmethod
    def _simulate(node: Node, node_inputs: list, fixed: bool) -> np.ndarray:
        # Every node type vectorizes over leading trial axes (the batch
        # contract of repro.sfg.nodes.Node), so there is no row-wise
        # fallback: one call runs the whole stack.
        compute = node.simulate_fixed if fixed else node.simulate
        return compute(node_inputs)

    def _codegen_tape(self):
        """The bound op tape when the codegen backend should run this
        plan's fixed simulation, ``None`` otherwise (backend inactive, or
        the plan contains nodes the tape cannot express)."""
        from repro.simkernel.backend import get_backend

        if get_backend() != "codegen" or self._tape_error is not None:
            return None
        if self._any_edge_taps:
            # The tape has no edge-tap semantics; fall back to the
            # per-node walk without latching an error — the taps may be
            # removed by a later requantize, re-enabling the tape.
            return None
        if self._tape is None:
            from repro.simkernel.codegen import (UnsupportedPlanError,
                                                 lower_plan)
            try:
                with span("tape.lower", graph=self.graph.name,
                          steps=len(self.steps)):
                    self._tape = lower_plan(self)
            except UnsupportedPlanError as error:
                self._tape_error = str(error)
                return None
            self._tape_bound = True
        elif not self._tape_bound:
            with span("tape.bind", graph=self.graph.name):
                self._tape.bind(self)
            self._tape_bound = True
        return self._tape

    def run(self, inputs: dict, mode: str = "double",
            keep_signals: bool = False):
        """Execute the schedule on one stimulus (1-D) or a batch (2-D).

        Parameters mirror :meth:`repro.sfg.executor.SfgExecutor.run`; a
        2-D stimulus of shape ``(trials, samples)`` runs all trials in one
        vectorized pass.
        """
        from repro.sfg.executor import ExecutionResult

        if mode not in ("double", "fixed"):
            raise ValueError(f"unknown execution mode {mode!r}")
        # Pick up quantization-spec mutations made since the last run (a
        # cheap signature comparison when nothing changed).
        self.refresh()
        fixed = mode == "fixed"
        stimulus = dict(zip(self.input_names, self._stimulus_slots(inputs)))
        tape = self._codegen_tape() if fixed else None
        engine = "tape" if tape is not None else "walk"
        metric_inc("plan.runs", mode=mode, engine=engine)
        with span("plan.run", mode=mode, engine=engine):
            if tape is not None:
                signals = tape.execute(stimulus)
            else:
                signals = [None] * len(self.steps)
                for step in self.steps:
                    if isinstance(step.node, InputNode):
                        value = stimulus[step.name]
                        if fixed and step.quantizer is not None:
                            value = step.quantizer.quantize(value)
                        signals[step.index] = value
                        continue
                    node_inputs = [signals[i] for i in step.predecessors]
                    if fixed and step.edge_taps is not None:
                        node_inputs = [
                            tap.quantizer.quantize(value)
                            if tap is not None else value
                            for tap, value in zip(step.edge_taps,
                                                  node_inputs)]
                    signals[step.index] = self._simulate(step.node,
                                                         node_inputs, fixed)
        outputs = {name: signals[index]
                   for name, index in zip(self.output_names,
                                          self.output_indices)}
        return ExecutionResult(
            outputs=outputs,
            signals={step.name: signals[step.index] for step in self.steps}
            if keep_signals else {},
        )

    def run_pair(self, inputs: dict, keep_signals: bool = False):
        """Execute both precision modes in a single traversal.

        Returns ``(reference, fixed)`` :class:`ExecutionResult` objects.
        The stimulus is resolved, and the schedule walked, once; each step
        evaluates its double-precision and bit-true behaviour side by side,
        which is what the simulation-based error measurement needs.
        """
        from repro.sfg.executor import ExecutionResult

        self.refresh()
        stimulus = dict(zip(self.input_names, self._stimulus_slots(inputs)))
        reference: list = [None] * len(self.steps)
        tape = self._codegen_tape()
        engine = "tape" if tape is not None else "walk"
        metric_inc("plan.runs", mode="pair", engine=engine)
        with span("plan.run_pair", engine=engine):
            fixed: list = (tape.execute(stimulus) if tape is not None
                           else [None] * len(self.steps))
            for step in self.steps:
                if isinstance(step.node, InputNode):
                    value = stimulus[step.name]
                    reference[step.index] = value
                    if tape is None:
                        fixed[step.index] = (
                            step.quantizer.quantize(value)
                            if step.quantizer is not None else value)
                    continue
                reference[step.index] = self._simulate(
                    step.node, [reference[i] for i in step.predecessors],
                    False)
                if tape is None:
                    fixed_inputs = [fixed[i] for i in step.predecessors]
                    if step.edge_taps is not None:
                        fixed_inputs = [
                            tap.quantizer.quantize(value)
                            if tap is not None else value
                            for tap, value in zip(step.edge_taps,
                                                  fixed_inputs)]
                    fixed[step.index] = self._simulate(
                        step.node, fixed_inputs, True)
        results = []
        for signals in (reference, fixed):
            outputs = {name: signals[index]
                       for name, index in zip(self.output_names,
                                              self.output_indices)}
            results.append(ExecutionResult(
                outputs=outputs,
                signals={step.name: signals[step.index]
                         for step in self.steps} if keep_signals else {},
            ))
        return tuple(results)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CompiledPlan({self.graph.name!r}, steps={len(self.steps)}, "
                f"noise_sources={len(self.noise_steps)})")


# ----------------------------------------------------------------------
# Configuration stacks (the batched-evaluation axis)
# ----------------------------------------------------------------------
class ConfigStack:
    """A stack of word-length assignments resolved against one plan.

    The batched analytical walks evaluate ``K`` word-length configurations
    of the *same* graph structure in a single pass: noise-source moments
    gain a leading config axis, and per-node frequency responses are
    shared across the stack whenever the configs agree on the node's
    effective coefficient precision (they always do when
    ``coefficient_fractional_bits`` is pinned; otherwise only the configs
    that change that node's data bits get their own response row, served
    from the plan's memoized cache).

    Parameters
    ----------
    plan:
        The compiled plan the assignments apply to.
    assignments:
        Sequence of ``{node name: fractional bits}`` mappings; keys may
        also be ``"source->target"`` edge keys assigning per-fanout-branch
        word lengths.  ``None`` disables quantization for that node (or
        removes the tap); names absent from a mapping keep their current
        word length.  The assignments are *resolved* against the plan
        state at construction time — later mutations of the graph's specs
        do not retroactively change the stack.
    """

    __slots__ = ("plan", "size", "_bits", "_noise", "_edge_keys",
                 "_resolved_edges", "_edge_bits_by_step",
                 "_edge_noise_by_step", "_edge_key_by_slot")

    def __init__(self, plan: CompiledPlan, assignments):
        assignments = list(assignments)
        if not assignments:
            raise ValueError("the configuration stack is empty")
        plan.refresh()
        known = set(plan.graph.nodes)
        unknown = set()
        edge_keys = set()
        for assignment in assignments:
            for key in assignment:
                if key in known or key in edge_keys:
                    continue
                try:
                    plan._resolve_edge(*parse_edge_key(key))
                except ValueError:
                    unknown.add(key)
                else:
                    edge_keys.add(key)
        if unknown:
            raise ValueError(
                f"assignment names unknown to the graph: {sorted(unknown)}")
        # Live taps join the edge axis so resolved() fully overrides the
        # plan's tap state (a config that omits a live tap's key keeps it,
        # one that maps it to None removes it — exactly the node-default
        # semantics).
        for step in plan.steps:
            if step.edge_taps:
                for tap in step.edge_taps:
                    if tap is not None:
                        edge_keys.add(tap.key)
        self.plan = plan
        self.size = len(assignments)
        self._bits: list[tuple] = []
        self._noise: list[tuple[np.ndarray, np.ndarray] | None] = []
        for step in plan.steps:
            default = step.node.quantization.fractional_bits
            bits = tuple(assignment.get(step.name, default)
                         for assignment in assignments)
            self._bits.append(bits)
            per_bits: dict = {}
            means = np.zeros(self.size)
            variances = np.zeros(self.size)
            any_noise = False
            for k, b in enumerate(bits):
                stats = per_bits.get(b)
                if stats is None:
                    stats = plan.noise_for_bits(step, b)
                    per_bits[b] = stats
                means[k] = stats.mean
                variances[k] = stats.variance
                if stats.variance > 0.0 or stats.mean != 0.0:
                    any_noise = True
            self._noise.append((means, variances) if any_noise else None)
        # Per-edge axis: per-config tap bits and tap noise, stored on the
        # *target* step per input port (where the batched walks inject
        # them).  The tap-noise input grid is the source's word length in
        # the same config, mirroring the scalar EdgeTap exactly.
        self._edge_keys: tuple[str, ...] = tuple(sorted(edge_keys))
        self._resolved_edges: dict[str, tuple] = {}
        self._edge_bits_by_step: list = [None] * len(plan.steps)
        self._edge_noise_by_step: list = [None] * len(plan.steps)
        self._edge_key_by_slot: dict[tuple[int, int], str] = {}
        for key in self._edge_keys:
            source, target = parse_edge_key(key)
            target_index, port = plan._resolve_edge(source, target)
            source_index = plan.index_of[source]
            source_spec = plan.steps[source_index].node.quantization
            default = source_spec.edge_bits_for(target)
            bits = tuple(assignment.get(key, default)
                         for assignment in assignments)
            source_bits = self._bits[source_index]
            means = np.zeros(self.size)
            variances = np.zeros(self.size)
            any_noise = False
            per_pair: dict = {}
            for k, b in enumerate(bits):
                if b is None:
                    continue
                pair = (b, source_bits[k])
                stats = per_pair.get(pair)
                if stats is None:
                    stats = quantization_noise_stats(
                        int(b), rounding=source_spec.rounding,
                        input_fractional_bits=source_bits[k])
                    per_pair[pair] = stats
                means[k] = stats.mean
                variances[k] = stats.variance
                if stats.variance > 0.0 or stats.mean != 0.0:
                    any_noise = True
            self._resolved_edges[key] = bits
            self._edge_key_by_slot[(target_index, port)] = key
            by_step = self._edge_bits_by_step[target_index] or {}
            by_step[port] = bits
            self._edge_bits_by_step[target_index] = by_step
            if any_noise:
                noise_by_step = self._edge_noise_by_step[target_index] or {}
                noise_by_step[port] = (means, variances)
                self._edge_noise_by_step[target_index] = noise_by_step

    # ------------------------------------------------------------------
    # Per-step queries
    # ------------------------------------------------------------------
    def bits(self, step: PlanStep) -> tuple:
        """Per-config data-path fractional bits of one step."""
        return self._bits[step.index]

    def noise(self, step: PlanStep):
        """Per-config noise moments ``(means, variances)`` of one step.

        ``None`` when no config generates noise at this step; configs with
        a silent quantizer carry exact zeros.
        """
        return self._noise[step.index]

    def edge_bits(self, step: PlanStep):
        """Per-config tap bits of one step's incoming edges.

        ``None`` when the stack's edge axis does not touch this step;
        otherwise ``{input port: (bits per config, ...)}`` (entries may be
        ``None`` where a config removes the tap).
        """
        return self._edge_bits_by_step[step.index]

    def edge_noise(self, step: PlanStep):
        """Per-config tap-noise arrays of one step's incoming edges.

        ``None`` when no config injects tap noise at this step; otherwise
        ``{input port: (means, variances)}`` with exact zeros for silent
        configs.
        """
        return self._edge_noise_by_step[step.index]

    def edge_key(self, step: PlanStep, port: int) -> str:
        """The ``"source->target"`` key of one tapped input port."""
        return self._edge_key_by_slot[(step.index, port)]

    def edge_noise_sources(self) -> dict[str, tuple]:
        """``{edge key: (means, variances)}`` of taps noisy in some config."""
        result = {}
        for index, noise in enumerate(self._edge_noise_by_step):
            if noise:
                for port, arrays in noise.items():
                    result[self._edge_key_by_slot[(index, port)]] = arrays
        return result

    def resolved(self, config: int) -> dict:
        """Full ``{name: bits}`` assignment of one config (edge keys
        included), suitable for ``plan.requantize(...,
        allow_enable=True)`` to reproduce the config's complete
        quantization state."""
        result = {step.name: self._bits[step.index][config]
                  for step in self.plan.steps
                  if step.node.quantization.enabled
                  or self._bits[step.index][config] is not None}
        for key in self._edge_keys:
            result[key] = self._resolved_edges[key][config]
        return result

    def coefficient_signatures(self) -> list[tuple]:
        """Per-config tuples of effective coefficient precisions.

        Configs with equal signatures share every frequency response and
        transfer function — the grouping key used by the batched flat
        method and the batched simulation (which share reference runs
        within a group).  Only nodes whose behaviour actually quantizes
        coefficients (gains, FIR taps, IIR coefficients) contribute;
        coefficient-free nodes would otherwise split groups that share
        identical transfer behaviour.
        """
        dependent = [step for step in self.plan.steps
                     if isinstance(step.node, (GainNode, FirNode, IirNode))]
        return [tuple(self.plan.coeff_key_for_bits(step,
                                                   self._bits[step.index][k])
                      for step in dependent)
                for k in range(self.size)]

    def coefficient_groups(self) -> list[list[int]]:
        """Config indices grouped by equal coefficient signature.

        Within one group every transfer function, frequency response and
        double-precision reference behaviour is shared; only the noise
        moments (and the fixed-point data paths) differ per member.
        """
        groups: dict[tuple, list[int]] = {}
        for config, signature in enumerate(self.coefficient_signatures()):
            groups.setdefault(signature, []).append(config)
        return list(groups.values())

    # ------------------------------------------------------------------
    # Per-step responses / gains (scalar when shared, stacked otherwise)
    # ------------------------------------------------------------------
    def _stacked(self, step: PlanStep, lookup):
        bits = self._bits[step.index]
        keys = {self.plan.coeff_key_for_bits(step, b) for b in bits}
        if len(keys) == 1:
            return lookup(bits[0])
        return [lookup(b) for b in bits]

    def block_response(self, step: PlanStep, n_bins: int) -> np.ndarray:
        """Block response: ``(n_bins,)`` when shared, ``(K, n_bins)`` else."""
        rows = self._stacked(
            step, lambda b: self.plan.block_response_for_bits(step, b, n_bins))
        return rows if isinstance(rows, np.ndarray) else np.stack(rows)

    def shaping_response(self, step: PlanStep, n_bins: int) -> np.ndarray:
        """Noise-shaping response, shared or per-config stacked."""
        rows = self._stacked(
            step,
            lambda b: self.plan.shaping_response_for_bits(step, b, n_bins))
        return rows if isinstance(rows, np.ndarray) else np.stack(rows)

    def block_gains(self, step: PlanStep):
        """``(energy, dc)`` scalars when shared, ``(K,)`` arrays else."""
        pairs = self._stacked(
            step, lambda b: self.plan.block_gains_for_bits(step, b))
        if isinstance(pairs, tuple):
            return pairs
        return (np.array([p[0] for p in pairs]),
                np.array([p[1] for p in pairs]))

    def shaping_gains(self, step: PlanStep):
        """Noise-shaping ``(energy, dc)``, shared or per-config arrays."""
        pairs = self._stacked(
            step, lambda b: self.plan.shaping_gains_for_bits(step, b))
        if isinstance(pairs, tuple):
            return pairs
        return (np.array([p[0] for p in pairs]),
                np.array([p[1] for p in pairs]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ConfigStack(size={self.size}, "
                f"plan={self.plan.graph.name!r})")


# ----------------------------------------------------------------------
# Plan walking (shared by the analytical engines)
# ----------------------------------------------------------------------
def walk_plan(plan: CompiledPlan, zero, propagate, inject) -> dict[str, object]:
    """Generic noise-propagation traversal over a compiled schedule.

    Parameters
    ----------
    plan:
        The compiled plan to traverse.
    zero:
        ``zero(step)`` — representation of "no noise" at a source node.
    propagate:
        ``propagate(step, inputs)`` — the node's propagation rule applied
        to the representations of its predecessors.
    inject:
        ``inject(step, representation)`` — add the step's own (non-trivial)
        noise source to the representation at the node output.

    Returns
    -------
    dict
        Mapping from node name to the noise representation at its output.
    """
    slots: list = [None] * len(plan.steps)
    for step in plan.steps:
        if step.is_source:
            representation = zero(step)
        else:
            representation = propagate(
                step, [slots[i] for i in step.predecessors])
        if step.noise is not None:
            representation = inject(step, representation)
        slots[step.index] = representation
    return {step.name: slots[step.index] for step in plan.steps}


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
# One plan is cached per graph, stored on the graph object itself: the
# graph and its plan form an ordinary reference cycle that the garbage
# collector reclaims together, so throwaway graphs (parameter sweeps,
# per-request deserialization) do not accumulate plans for the process
# lifetime.
_PLAN_ATTRIBUTE = "_compiled_plan"


def structure_signature(graph: SignalFlowGraph) -> tuple:
    """Cheap fingerprint of the graph structure (nodes and wiring).

    Node identity (not equality) is part of the signature, so replacing a
    node object — even with an identical one — invalidates cached plans.
    """
    return (tuple(id(node) for node in graph.nodes.values()),
            tuple(graph.edges))


def quantization_signature(graph: SignalFlowGraph) -> tuple:
    """Cheap fingerprint of every node's quantization specification.

    Component order matters to :meth:`CompiledPlan.refresh`, which
    decomposes a per-node diff: indices 0 (word length), 1 (rounding) and
    4 (edge entries) also dirty the node's tapped fanout targets, index 5
    (integer width) rebuilds the quantizer without dirtying analytical
    caches (overflow is NONE, so values never change).
    """
    return tuple((spec.fractional_bits, spec.rounding,
                  spec.coefficient_fractional_bits,
                  spec.input_fractional_bits,
                  spec.edge_fractional_bits,
                  spec.integer_bits)
                 for spec in (node.quantization
                              for node in graph.nodes.values()))


def _node_coefficient_state(node: Node) -> tuple:
    if isinstance(node, GainNode):
        return (node.gain,)
    if isinstance(node, IirNode):
        return (node.filter.b.tobytes(), node.filter.a.tobytes())
    if isinstance(node, FirNode):
        return (node.filter.taps.tobytes(),)
    if isinstance(node, LtiNode):
        tf = node.transfer_function()
        return (tf.b.tobytes(), tf.a.tobytes())
    if isinstance(node, AddNode):
        return tuple(node.signs)
    if isinstance(node, DelayNode):
        return (node.delay,)
    if isinstance(node, DownsampleNode):
        return (node.factor, node.phase)
    if isinstance(node, UpsampleNode):
        return (node.factor,)
    return ()


def coefficient_signature(graph: SignalFlowGraph) -> tuple:
    """Fingerprint of every node's behavioural coefficients.

    Covers the mutable numeric state a node's transfer behaviour depends
    on (gains, taps, signs, delays, resampling factors), so a plan can
    detect in-place coefficient edits and drop its memoized responses.
    """
    return tuple(_node_coefficient_state(node)
                 for node in graph.nodes.values())


def compile_plan(system: SignalFlowGraph | CompiledPlan) -> CompiledPlan:
    """Return a (cached) compiled plan for ``system``.

    Passing an existing :class:`CompiledPlan` returns it unchanged.  For a
    :class:`SignalFlowGraph`, one plan is cached per graph object: the
    cached plan is reused while the structure is unchanged (a cheap
    signature comparison), transparently refreshed when only quantization
    specs changed, and recompiled when the structure changed.
    """
    if isinstance(system, CompiledPlan):
        # Keep direct plan handles honest too: pick up spec / coefficient
        # mutations made on the underlying graph since the last use.
        system.refresh()
        return system
    if not isinstance(system, SignalFlowGraph):
        raise TypeError(
            f"expected a SignalFlowGraph or CompiledPlan, got "
            f"{type(system).__name__}")
    plan = getattr(system, _PLAN_ATTRIBUTE, None)
    if plan is not None and plan._structure_signature == structure_signature(system):
        plan.refresh()
        return plan
    with span("plan.compile", graph=system.name) as compile_span:
        plan = CompiledPlan(system)
        compile_span.set(steps=len(plan.steps),
                         noise_sources=len(plan.noise_steps))
    setattr(system, _PLAN_ATTRIBUTE, plan)
    return plan
