"""The signal-flow-graph container.

A :class:`SignalFlowGraph` holds named nodes and directed edges between
them.  Every node produces exactly one output signal, which may fan out to
any number of consumers; multi-input nodes (adders) declare the number of
input ports they expose and each port must be driven by exactly one edge.

The graph offers the structural queries the evaluation engines need:
validation, topological ordering, predecessor lookup and reachability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sfg.nodes import (
    DownsampleNode,
    InputNode,
    Node,
    OutputNode,
    UpsampleNode,
)


@dataclass(frozen=True)
class Edge:
    """A directed connection from a node's output to a node's input port."""

    source: str
    target: str
    port: int = 0

    def __post_init__(self) -> None:
        if self.port < 0:
            raise ValueError(f"port must be non-negative, got {self.port}")


class SignalFlowGraph:
    """A directed graph of :class:`~repro.sfg.nodes.Node` objects."""

    def __init__(self, name: str = "sfg"):
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._edges: list[Edge] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Add ``node`` to the graph; names must be unique."""
        if node.name in self._nodes:
            raise ValueError(f"a node named {node.name!r} already exists")
        self._nodes[node.name] = node
        return node

    def connect(self, source: str, target: str, port: int = 0) -> Edge:
        """Connect ``source``'s output to input ``port`` of ``target``."""
        if source not in self._nodes:
            raise KeyError(f"unknown source node {source!r}")
        if target not in self._nodes:
            raise KeyError(f"unknown target node {target!r}")
        target_node = self._nodes[target]
        if port >= target_node.num_inputs:
            raise ValueError(
                f"node {target!r} has {target_node.num_inputs} input ports; "
                f"port {port} does not exist")
        for edge in self._edges:
            if edge.target == target and edge.port == port:
                raise ValueError(
                    f"input port {port} of node {target!r} is already driven "
                    f"by {edge.source!r}")
        edge = Edge(source=source, target=target, port=port)
        self._edges.append(edge)
        return edge

    def remove_node(self, name: str) -> None:
        """Remove a node and every edge touching it."""
        if name not in self._nodes:
            raise KeyError(f"unknown node {name!r}")
        del self._nodes[name]
        self._edges = [edge for edge in self._edges
                       if edge.source != name and edge.target != name]

    def remove_edge(self, edge: Edge) -> None:
        """Remove a specific edge."""
        self._edges.remove(edge)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> dict[str, Node]:
        """Mapping from node name to node (read-only view)."""
        return dict(self._nodes)

    @property
    def edges(self) -> list[Edge]:
        """List of edges (copy)."""
        return list(self._edges)

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        return self._nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def input_names(self) -> list[str]:
        """Names of every :class:`InputNode`, in insertion order."""
        return [name for name, node in self._nodes.items()
                if isinstance(node, InputNode)]

    def output_names(self) -> list[str]:
        """Names of every :class:`OutputNode`, in insertion order."""
        return [name for name, node in self._nodes.items()
                if isinstance(node, OutputNode)]

    def predecessors(self, name: str) -> list[Edge]:
        """Edges driving the input ports of ``name``, sorted by port."""
        incoming = [edge for edge in self._edges if edge.target == name]
        return sorted(incoming, key=lambda edge: edge.port)

    def successors(self, name: str) -> list[Edge]:
        """Edges leaving ``name``'s output."""
        return [edge for edge in self._edges if edge.source == name]

    def fanout(self, name: str) -> int:
        """Number of consumers of ``name``'s output."""
        return len(self.successors(name))

    # ------------------------------------------------------------------
    # Validation / structure
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check that the graph is structurally sound.

        * every input port of every node is driven by exactly one edge;
        * output nodes do not feed other nodes;
        * there is at least one input and one output.
        """
        if not self.input_names():
            raise ValueError(f"graph {self.name!r} has no input node")
        if not self.output_names():
            raise ValueError(f"graph {self.name!r} has no output node")
        for name, node in self._nodes.items():
            driven = {edge.port for edge in self.predecessors(name)}
            expected = set(range(node.num_inputs))
            missing = expected - driven
            if missing:
                raise ValueError(
                    f"node {name!r} has undriven input ports {sorted(missing)}")
            if isinstance(node, OutputNode) and self.successors(name):
                raise ValueError(f"output node {name!r} must not drive other nodes")

    def topological_order(self) -> list[str]:
        """Node names in topological order.

        Raises
        ------
        ValueError
            If the graph contains a cycle (feedback loops must be broken
            with :func:`repro.sfg.cycles.break_feedback_loops` first).
        """
        in_degree = {name: len(self.predecessors(name)) for name in self._nodes}
        ready = [name for name, degree in in_degree.items() if degree == 0]
        order: list[str] = []
        while ready:
            # Pop in insertion order for deterministic results.
            ready.sort(key=lambda n: list(self._nodes).index(n))
            current = ready.pop(0)
            order.append(current)
            for edge in self.successors(current):
                in_degree[edge.target] -= 1
                if in_degree[edge.target] == 0:
                    ready.append(edge.target)
        if len(order) != len(self._nodes):
            unresolved = sorted(set(self._nodes) - set(order))
            raise ValueError(
                f"graph {self.name!r} contains at least one cycle involving "
                f"{unresolved}; break feedback loops first")
        return order

    def is_acyclic(self) -> bool:
        """Whether the graph contains no directed cycle."""
        try:
            self.topological_order()
        except ValueError:
            return False
        return True

    def reachable_from(self, name: str) -> set[str]:
        """Set of node names reachable from ``name`` (excluding itself)."""
        if name not in self._nodes:
            raise KeyError(f"unknown node {name!r}")
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for edge in self.successors(current):
                if edge.target not in seen:
                    seen.add(edge.target)
                    frontier.append(edge.target)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SignalFlowGraph({self.name!r}, nodes={len(self._nodes)}, "
                f"edges={len(self._edges)})")


def is_multirate(graph: SignalFlowGraph) -> bool:
    """Whether the graph contains decimators or expanders.

    Multirate graphs restrict the applicable evaluation engines: the flat
    and tracked methods are only defined at a single rate (the campaign
    layer skips those grid points, the verification harness skips those
    checks).
    """
    return any(isinstance(node, (DownsampleNode, UpsampleNode))
               for node in graph.nodes.values())
